//! Full-search block motion estimation on a pluggable SAD accelerator.
//!
//! For every `B×B` block of the current frame, search the co-located
//! `±range` window in the reference frame for the candidate minimizing the
//! (possibly approximate) SAD. [`MotionEstimator::sad_surface`] exposes the
//! whole candidate-cost surface for one block — the quantity Fig.8 plots —
//! and [`MotionEstimator::estimate`] produces the motion field the encoder
//! consumes.
//!
//! # Example
//!
//! ```
//! use xlac_video::me::MotionEstimator;
//! use xlac_video::sequence::{SequenceConfig, SyntheticSequence};
//! use xlac_accel::sad::SadAccelerator;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let seq = SyntheticSequence::generate(&SequenceConfig::small_test())?;
//! let me = MotionEstimator::new(SadAccelerator::accurate(64)?, 4)?;
//! let field = me.estimate(&seq.frames()[1], &seq.frames()[0])?;
//! assert_eq!(field.block_size, 8);
//! # Ok(())
//! # }
//! ```

use xlac_accel::sad::SadAccelerator;
use xlac_core::error::{Result, XlacError};
use xlac_core::Grid;

/// A motion field: one motion vector (and its SAD cost) per block.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionField {
    /// Block side length.
    pub block_size: usize,
    /// Per-block motion vectors `(dy, dx)`, row-major over blocks.
    pub vectors: Grid<(i32, i32)>,
    /// Per-block best SAD cost (as reported by the accelerator).
    pub costs: Grid<u64>,
}

/// Full-search motion estimator.
#[derive(Debug, Clone)]
pub struct MotionEstimator {
    sad: SadAccelerator,
    block: usize,
    range: i32,
}

impl MotionEstimator {
    /// Creates an estimator: block size is derived from the accelerator's
    /// lane count (`B = sqrt(lanes)`), searching `±range` pixels.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidConfiguration`] when the lane count is
    /// not a perfect square or `range` is 0.
    pub fn new(sad: SadAccelerator, range: i32) -> Result<Self> {
        let lanes = sad.lanes();
        let block = (lanes as f64).sqrt().round() as usize;
        if block * block != lanes {
            return Err(XlacError::InvalidConfiguration(format!(
                "lane count {lanes} is not a perfect square"
            )));
        }
        if range <= 0 {
            return Err(XlacError::InvalidConfiguration("search range must be positive".into()));
        }
        Ok(MotionEstimator { sad, block, range })
    }

    /// The SAD accelerator in use.
    #[must_use]
    pub fn sad_accelerator(&self) -> &SadAccelerator {
        &self.sad
    }

    /// Block side length.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Search range in pixels.
    #[must_use]
    pub fn range(&self) -> i32 {
        self.range
    }

    fn gather(frame: &Grid<u64>, top: i64, left: i64, block: usize) -> Option<Vec<u64>> {
        let (rows, cols) = frame.shape();
        if top < 0 || left < 0 {
            return None;
        }
        let (top, left) = (top as usize, left as usize);
        if top + block > rows || left + block > cols {
            return None;
        }
        let mut out = Vec::with_capacity(block * block);
        for r in top..top + block {
            out.extend_from_slice(&frame.row(r)[left..left + block]);
        }
        Some(out)
    }

    /// The full SAD cost surface for the block at `(block_row, block_col)`
    /// (in block units): a `(2·range+1)²` grid indexed by candidate
    /// displacement, `surface[(range+dy, range+dx)]`. Out-of-frame
    /// candidates carry `u64::MAX`.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::IndexOutOfBounds`] for an out-of-frame block or
    /// shape errors from the accelerator.
    pub fn sad_surface(
        &self,
        current: &Grid<u64>,
        reference: &Grid<u64>,
        block_row: usize,
        block_col: usize,
    ) -> Result<Grid<u64>> {
        let b = self.block;
        let top = (block_row * b) as i64;
        let left = (block_col * b) as i64;
        let cur = Self::gather(current, top, left, b).ok_or(XlacError::IndexOutOfBounds {
            index: (block_row, block_col),
            shape: (current.rows() / b, current.cols() / b),
        })?;
        let side = (2 * self.range + 1) as usize;
        let mut surface = Grid::new(side, side, u64::MAX);
        for dy in -self.range..=self.range {
            for dx in -self.range..=self.range {
                if let Some(cand) = Self::gather(reference, top + dy as i64, left + dx as i64, b) {
                    surface[((self.range + dy) as usize, (self.range + dx) as usize)] =
                        self.sad.sad(&cur, &cand)?;
                }
            }
        }
        Ok(surface)
    }

    /// Full-search motion estimation of `current` against `reference`.
    /// Frame dimensions must be multiples of the block size. Ties are
    /// broken toward the smaller displacement (then raster order), the
    /// convention real encoders use to keep motion fields smooth.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::ShapeMismatch`] when the frames disagree or are
    /// not block-aligned.
    pub fn estimate(&self, current: &Grid<u64>, reference: &Grid<u64>) -> Result<MotionField> {
        if current.shape() != reference.shape() {
            return Err(XlacError::ShapeMismatch {
                expected: current.shape(),
                actual: reference.shape(),
            });
        }
        let b = self.block;
        if !current.rows().is_multiple_of(b) || !current.cols().is_multiple_of(b) {
            return Err(XlacError::ShapeMismatch {
                expected: (current.rows() / b * b, current.cols() / b * b),
                actual: current.shape(),
            });
        }
        let blocks_r = current.rows() / b;
        let blocks_c = current.cols() / b;
        let mut vectors = Grid::new(blocks_r, blocks_c, (0i32, 0i32));
        let mut costs = Grid::new(blocks_r, blocks_c, u64::MAX);
        for br in 0..blocks_r {
            for bc in 0..blocks_c {
                let top = (br * b) as i64;
                let left = (bc * b) as i64;
                let cur = Self::gather(current, top, left, b).expect("block-aligned");
                let mut best = (u64::MAX, i32::MAX, (0i32, 0i32));
                for dy in -self.range..=self.range {
                    for dx in -self.range..=self.range {
                        let Some(cand) =
                            Self::gather(reference, top + dy as i64, left + dx as i64, b)
                        else {
                            continue;
                        };
                        let cost = self.sad.sad(&cur, &cand)?;
                        let mag = dy.abs() + dx.abs();
                        if cost < best.0 || (cost == best.0 && mag < best.1) {
                            best = (cost, mag, (dy, dx));
                        }
                    }
                }
                vectors[(br, bc)] = best.2;
                costs[(br, bc)] = best.0;
            }
        }
        Ok(MotionField { block_size: b, vectors, costs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlac_accel::sad::SadVariant;

    /// A frame pair where every block moves by exactly (1, 2).
    fn shifted_pair() -> (Grid<u64>, Grid<u64>) {
        let reference = Grid::from_fn(48, 48, |r, c| ((r * 31 + c * 17 + (r * c) % 7) % 256) as u64);
        let current = Grid::from_fn(48, 48, |r, c| {
            let rr = (r as i64 - 1).clamp(0, 47) as usize;
            let cc = (c as i64 - 2).clamp(0, 47) as usize;
            reference[(rr, cc)]
        });
        (current, reference)
    }

    #[test]
    fn exact_me_recovers_global_translation() {
        let (cur, reff) = shifted_pair();
        let me = MotionEstimator::new(SadAccelerator::accurate(64).unwrap(), 4).unwrap();
        let field = me.estimate(&cur, &reff).unwrap();
        // Interior blocks must find (-1, -2) (content moved down-right, so
        // the match lies up-left in the reference).
        let mut hits = 0;
        for br in 1..5 {
            for bc in 1..5 {
                if field.vectors[(br, bc)] == (-1, -2) {
                    hits += 1;
                }
                assert_eq!(field.costs[(br, bc)], 0, "interior block SAD must be 0");
            }
        }
        assert_eq!(hits, 16);
    }

    #[test]
    fn mild_approximation_preserves_the_motion_vectors() {
        // Fig.8's claim: the approximate surface is shifted but the argmin
        // survives.
        let (cur, reff) = shifted_pair();
        let exact = MotionEstimator::new(SadAccelerator::accurate(64).unwrap(), 4).unwrap();
        let approx = MotionEstimator::new(
            SadAccelerator::new(64, SadVariant::ApxSad2, 2).unwrap(),
            4,
        )
        .unwrap();
        let f_exact = exact.estimate(&cur, &reff).unwrap();
        let f_apx = approx.estimate(&cur, &reff).unwrap();
        let agreeing = f_exact
            .vectors
            .iter()
            .zip(f_apx.vectors.iter())
            .filter(|(a, b)| a == b)
            .count();
        let total = f_exact.vectors.len();
        assert!(
            agreeing * 10 >= total * 8,
            "mild approximation should preserve most MVs: {agreeing}/{total}"
        );
    }

    #[test]
    fn surface_minimum_sits_at_the_true_displacement() {
        let (cur, reff) = shifted_pair();
        let me = MotionEstimator::new(SadAccelerator::accurate(64).unwrap(), 4).unwrap();
        let surface = me.sad_surface(&cur, &reff, 2, 2).unwrap();
        assert_eq!(surface.shape(), (9, 9));
        let (mut best, mut at) = (u64::MAX, (0usize, 0usize));
        for (r, c, &v) in surface.enumerate() {
            if v < best {
                best = v;
                at = (r, c);
            }
        }
        // (range + dy, range + dx) = (4 - 1, 4 - 2) = (3, 2).
        assert_eq!(at, (3, 2));
        assert_eq!(best, 0);
    }

    #[test]
    fn approximate_surface_is_shifted_upward_but_correlated() {
        let (cur, reff) = shifted_pair();
        let exact = MotionEstimator::new(SadAccelerator::accurate(64).unwrap(), 4).unwrap();
        let approx = MotionEstimator::new(
            SadAccelerator::new(64, SadVariant::ApxSad3, 4).unwrap(),
            4,
        )
        .unwrap();
        let s_exact = exact.sad_surface(&cur, &reff, 2, 2).unwrap();
        let s_apx = approx.sad_surface(&cur, &reff, 2, 2).unwrap();
        // Mean over in-frame candidates grows (ApxFA3's zero-row errors add
        // positive bias) while the surface stays strongly rank-correlated.
        let pairs: Vec<(f64, f64)> = s_exact
            .iter()
            .zip(s_apx.iter())
            .filter(|(&a, &b)| a != u64::MAX && b != u64::MAX)
            .map(|(&a, &b)| (a as f64, b as f64))
            .collect();
        let n = pairs.len() as f64;
        let (mx, my) = (
            pairs.iter().map(|p| p.0).sum::<f64>() / n,
            pairs.iter().map(|p| p.1).sum::<f64>() / n,
        );
        let cov: f64 = pairs.iter().map(|(x, y)| (x - mx) * (y - my)).sum::<f64>();
        let vx: f64 = pairs.iter().map(|(x, _)| (x - mx).powi(2)).sum::<f64>();
        let vy: f64 = pairs.iter().map(|(_, y)| (y - my).powi(2)).sum::<f64>();
        let corr = cov / (vx.sqrt() * vy.sqrt());
        assert!(corr > 0.9, "surfaces must stay correlated: r = {corr}");
    }

    #[test]
    fn constructor_validation() {
        // 32 lanes is not a perfect square.
        assert!(MotionEstimator::new(SadAccelerator::accurate(32).unwrap(), 4).is_err());
        assert!(MotionEstimator::new(SadAccelerator::accurate(64).unwrap(), 0).is_err());
    }

    #[test]
    fn frame_shape_validation() {
        let me = MotionEstimator::new(SadAccelerator::accurate(64).unwrap(), 2).unwrap();
        let a = Grid::new(48, 48, 0u64);
        let b = Grid::new(48, 40, 0u64);
        assert!(me.estimate(&a, &b).is_err());
        let c = Grid::new(44, 44, 0u64); // not block-aligned
        assert!(me.estimate(&c, &c).is_err());
    }
}
