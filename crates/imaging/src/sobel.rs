//! A Sobel edge-detection accelerator on approximate arithmetic.
//!
//! Edge detection is the second classic "inherently resilient" vision
//! kernel (the paper's survey lists `sobel` among the NPU benchmark
//! workloads). The Sobel gradient decomposes into unsigned arithmetic the
//! workspace already has: each directional gradient is the difference of
//! two weighted three-pixel sums (weights 1-2-1, i.e. shift-adds), taken
//! through an approximate subtractor, and the L1 magnitude
//! `|gx| + |gy|` accumulates through an approximate adder.
//!
//! # Example
//!
//! ```
//! use xlac_imaging::sobel::SobelAccelerator;
//! use xlac_imaging::images::TestImage;
//! use xlac_adders::FullAdderKind;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let img = TestImage::Stripes.render(32);
//! let exact = SobelAccelerator::accurate()?.apply(&img)?;
//! let approx = SobelAccelerator::new(FullAdderKind::Apx3, 3)?.apply(&img)?;
//! assert_eq!(exact.shape(), approx.shape());
//! # Ok(())
//! # }
//! ```

use xlac_adders::{Adder, FullAdderKind, RippleCarryAdder, Subtractor};
use xlac_core::characterization::HwCost;
use xlac_core::error::{Result, XlacError};
use xlac_core::Grid;

/// A 3×3 Sobel gradient-magnitude accelerator with approximate adders in
/// the weighted sums, the differences and the magnitude accumulation.
#[derive(Debug, Clone)]
pub struct SobelAccelerator {
    kind: FullAdderKind,
    approx_lsbs: usize,
    /// Weighted-sum adder (max 4·255 < 2^11).
    sum_adder: RippleCarryAdder,
    /// Gradient subtractor on the same width.
    sub: Subtractor<RippleCarryAdder>,
}

impl SobelAccelerator {
    /// Datapath width: weighted sums reach 1020, magnitudes 2040 < 2^11.
    const WORD_BITS: usize = 11;

    /// Builds the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidConfiguration`] when `approx_lsbs`
    /// exceeds 8.
    pub fn new(kind: FullAdderKind, approx_lsbs: usize) -> Result<Self> {
        if approx_lsbs > 8 {
            return Err(XlacError::InvalidConfiguration(format!(
                "{approx_lsbs} approximate LSBs exceed the supported 8"
            )));
        }
        let sum_adder = RippleCarryAdder::with_approx_lsbs(Self::WORD_BITS, kind, approx_lsbs)?;
        let sub = Subtractor::new(RippleCarryAdder::with_approx_lsbs(
            Self::WORD_BITS,
            kind,
            approx_lsbs,
        )?);
        Ok(SobelAccelerator { kind, approx_lsbs, sum_adder, sub })
    }

    /// The exact baseline.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept for API uniformity.
    pub fn accurate() -> Result<Self> {
        SobelAccelerator::new(FullAdderKind::Accurate, 0)
    }

    /// The configured cell kind.
    #[must_use]
    pub fn cell_kind(&self) -> FullAdderKind {
        self.kind
    }

    /// Number of approximated LSBs.
    #[must_use]
    pub fn approx_lsbs(&self) -> usize {
        self.approx_lsbs
    }

    /// Weighted 1-2-1 sum of three pixels through the approximate adder.
    fn weighted(&self, a: u64, b: u64, c: u64) -> u64 {
        let b2 = b << 1; // weight-2 tap is wiring
        let t = self.sum_adder.add(a, b2);
        xlac_core::bits::truncate(self.sum_adder.add(t, c), Self::WORD_BITS)
    }

    /// Applies the operator, replicating edges; output is the clamped
    /// 8-bit gradient magnitude `min(|gx| + |gy|, 255)`.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::OperandOutOfRange`] for non-8-bit pixels or
    /// [`XlacError::InvalidConfiguration`] for images smaller than 3×3.
    pub fn apply(&self, image: &Grid<u64>) -> Result<Grid<u64>> {
        if image.rows() < 3 || image.cols() < 3 {
            return Err(XlacError::InvalidConfiguration(format!(
                "image {}x{} smaller than the 3x3 kernel",
                image.rows(),
                image.cols()
            )));
        }
        if let Some(&bad) = image.iter().find(|&&v| v > 255) {
            return Err(XlacError::OperandOutOfRange { value: bad, width: 8 });
        }
        let (rows, cols) = image.shape();
        let clamp = |v: isize, hi: usize| v.clamp(0, hi as isize - 1) as usize;
        let px = |r: isize, c: isize| image[(clamp(r, rows), clamp(c, cols))];
        Ok(Grid::from_fn(rows, cols, |r, c| {
            let (r, c) = (r as isize, c as isize);
            // Column sums for gx, row sums for gy (1-2-1 weighting).
            let left = self.weighted(px(r - 1, c - 1), px(r, c - 1), px(r + 1, c - 1));
            let right = self.weighted(px(r - 1, c + 1), px(r, c + 1), px(r + 1, c + 1));
            let top = self.weighted(px(r - 1, c - 1), px(r - 1, c), px(r - 1, c + 1));
            let bottom = self.weighted(px(r + 1, c - 1), px(r + 1, c), px(r + 1, c + 1));
            let gx = self.sub.abs_diff(right, left);
            let gy = self.sub.abs_diff(bottom, top);
            let mag = xlac_core::bits::truncate(self.sum_adder.add(gx, gy), Self::WORD_BITS);
            mag.min(255)
        }))
    }

    /// The exact software reference.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SobelAccelerator::apply`].
    pub fn apply_exact(image: &Grid<u64>) -> Result<Grid<u64>> {
        SobelAccelerator::accurate()?.apply(image)
    }

    /// Hardware cost: four weighted-sum chains (2 adders each), two
    /// subtractors and the magnitude adder.
    #[must_use]
    pub fn hw_cost(&self) -> HwCost {
        let add = self.sum_adder.hw_cost();
        let sub = self.sub.hw_cost();
        let sums = add.parallel(add).parallel(add).parallel(add) + add * 4.0;
        let grads = sub.parallel(sub);
        sums + grads + add
    }

    /// Instance name, e.g. `"Sobel(ApxFA3, 3 LSBs)"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("Sobel({}, {} LSBs)", self.kind, self.approx_lsbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::TestImage;

    #[test]
    fn accurate_matches_software_sobel() {
        let img = TestImage::Clouds.render(24);
        let hw = SobelAccelerator::accurate().unwrap().apply(&img).unwrap();
        let (rows, cols) = img.shape();
        let clamp = |v: isize, hi: usize| v.clamp(0, hi as isize - 1) as usize;
        for r in 0..rows {
            for c in 0..cols {
                let px = |dr: isize, dc: isize| {
                    img[(clamp(r as isize + dr, rows), clamp(c as isize + dc, cols))] as i64
                };
                let gx = (px(-1, 1) + 2 * px(0, 1) + px(1, 1))
                    - (px(-1, -1) + 2 * px(0, -1) + px(1, -1));
                let gy = (px(1, -1) + 2 * px(1, 0) + px(1, 1))
                    - (px(-1, -1) + 2 * px(-1, 0) + px(-1, 1));
                let expect = (gx.unsigned_abs() + gy.unsigned_abs()).min(255);
                assert_eq!(hw[(r, c)], expect, "pixel ({r},{c})");
            }
        }
    }

    #[test]
    fn flat_image_has_zero_gradient() {
        let img = Grid::new(16, 16, 100u64);
        let out = SobelAccelerator::accurate().unwrap().apply(&img).unwrap();
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn vertical_edges_fire_on_stripes() {
        let img = TestImage::Stripes.render(32);
        let out = SobelAccelerator::accurate().unwrap().apply(&img).unwrap();
        // The stripe boundaries must saturate; stripe interiors stay 0.
        assert!(out.iter().any(|&v| v == 255));
        assert!(out.iter().any(|&v| v == 0));
    }

    #[test]
    fn approximate_sobel_preserves_edge_structure() {
        let img = TestImage::Stripes.render(32);
        let exact = SobelAccelerator::accurate().unwrap().apply(&img).unwrap();
        let approx = SobelAccelerator::new(FullAdderKind::Apx1, 3).unwrap().apply(&img).unwrap();
        // Edge/non-edge classification at threshold 128 must mostly agree.
        let agree = exact
            .iter()
            .zip(approx.iter())
            .filter(|(&e, &a)| (e >= 128) == (a >= 128))
            .count();
        assert!(
            agree * 100 >= exact.len() * 95,
            "classification agreement {agree}/{}",
            exact.len()
        );
    }

    #[test]
    fn error_grows_with_lsbs() {
        let img = TestImage::Clouds.render(32);
        let exact = SobelAccelerator::accurate().unwrap().apply(&img).unwrap();
        let mut last = -1.0f64;
        for lsbs in [0usize, 2, 4, 6] {
            let out = SobelAccelerator::new(FullAdderKind::Apx4, lsbs).unwrap().apply(&img).unwrap();
            let mean: f64 = exact
                .iter()
                .zip(out.iter())
                .map(|(&a, &b)| a.abs_diff(b) as f64)
                .sum::<f64>()
                / exact.len() as f64;
            assert!(mean >= last - 1e-9);
            last = mean;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn cost_and_validation() {
        assert!(SobelAccelerator::new(FullAdderKind::Apx1, 9).is_err());
        let exact = SobelAccelerator::accurate().unwrap();
        assert!(exact.apply(&Grid::new(2, 2, 0u64)).is_err());
        assert!(exact.apply(&Grid::new(8, 8, 256u64)).is_err());
        let approx = SobelAccelerator::new(FullAdderKind::Apx5, 6).unwrap();
        assert!(approx.hw_cost().area_ge < exact.hw_cost().area_ge);
        assert_eq!(approx.name(), "Sobel(ApxFA5, 6 LSBs)");
    }
}
