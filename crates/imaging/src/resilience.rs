//! The Fig.10 data-dependent resilience experiment.
//!
//! For each test image: filter it once on the accurate low-pass datapath
//! and once on the approximate one, then score the approximate output
//! against the accurate output with SSIM. The paper's observation — the
//! experiment this module regenerates — is that the *same* approximate
//! circuit yields *different* SSIM on different content, so approximation
//! control should be data-driven.
//!
//! # Example
//!
//! ```
//! use xlac_imaging::images::TestImage;
//! use xlac_imaging::resilience::{resilience_study, StudyConfig};
//! use xlac_adders::FullAdderKind;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let cfg = StudyConfig { size: 32, kind: FullAdderKind::Apx2, approx_lsbs: 4 };
//! let rows = resilience_study(&[TestImage::Gradient, TestImage::Noise], cfg)?;
//! assert_eq!(rows.len(), 2);
//! # Ok(())
//! # }
//! ```

use crate::images::TestImage;
use crate::to_f64;
use xlac_accel::filter::FilterAccelerator;
use xlac_adders::FullAdderKind;
use xlac_core::error::Result;
use xlac_quality::ssim;

/// Configuration of a resilience study run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyConfig {
    /// Image side length in pixels.
    pub size: usize,
    /// Approximate full-adder cell in the filter datapath.
    pub kind: FullAdderKind,
    /// Approximated accumulator LSBs.
    pub approx_lsbs: usize,
}

/// One row of the Fig.10 output.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceRow {
    /// The image.
    pub image: TestImage,
    /// SSIM of the approximately-filtered image against the accurately-
    /// filtered one.
    pub ssim: f64,
    /// Mean absolute pixel difference between the two outputs.
    pub mean_abs_diff: f64,
}

/// Runs the study over the given images.
///
/// # Errors
///
/// Propagates filter-construction and metric errors (invalid LSB count,
/// image smaller than the SSIM window).
pub fn resilience_study(images: &[TestImage], cfg: StudyConfig) -> Result<Vec<ResilienceRow>> {
    let accurate = FilterAccelerator::accurate()?;
    let approximate = FilterAccelerator::new(cfg.kind, cfg.approx_lsbs)?;
    images
        .iter()
        .map(|&image| {
            let src = image.render(cfg.size);
            let reference = accurate.apply(&src)?;
            let output = approximate.apply(&src)?;
            let score = ssim(&to_f64(&reference), &to_f64(&output))?;
            let mad = xlac_quality::mae_pairs(
                reference.iter().zip(output.iter()).map(|(&a, &b)| (a as f64, b as f64)),
            )
            .expect("rendered images are non-empty");
            Ok(ResilienceRow { image, ssim: score, mean_abs_diff: mad })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study(kind: FullAdderKind, lsbs: usize) -> Vec<ResilienceRow> {
        resilience_study(
            &TestImage::ALL,
            StudyConfig { size: 48, kind, approx_lsbs: lsbs },
        )
        .unwrap()
    }

    #[test]
    fn accurate_configuration_scores_perfect_everywhere() {
        for row in study(FullAdderKind::Accurate, 0) {
            assert!((row.ssim - 1.0).abs() < 1e-12, "{}", row.image);
            assert_eq!(row.mean_abs_diff, 0.0);
        }
    }

    #[test]
    fn ssim_varies_across_images() {
        // The Fig.10 headline: one circuit, different scores per image.
        let rows = study(FullAdderKind::Apx3, 4);
        let min = rows.iter().map(|r| r.ssim).fold(f64::INFINITY, f64::min);
        let max = rows.iter().map(|r| r.ssim).fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 0.005,
            "data-dependent resilience should spread the scores: {min}..{max}"
        );
        assert!(max <= 1.0 + 1e-12);
    }

    #[test]
    fn more_aggressive_approximation_lowers_mean_ssim() {
        let mild: f64 = study(FullAdderKind::Apx1, 2).iter().map(|r| r.ssim).sum::<f64>() / 7.0;
        let harsh: f64 = study(FullAdderKind::Apx5, 6).iter().map(|r| r.ssim).sum::<f64>() / 7.0;
        assert!(harsh < mild, "harsher config must lose more quality: {harsh} !< {mild}");
    }

    #[test]
    fn rows_follow_input_order() {
        let rows = study(FullAdderKind::Apx2, 2);
        for (row, img) in rows.iter().zip(TestImage::ALL) {
            assert_eq!(row.image, img);
        }
    }
}
