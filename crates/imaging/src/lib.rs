//! # xlac-imaging — synthetic test images and data-dependent resilience
//!
//! Fig.10 of the paper filters a set of images on approximate hardware and
//! shows that "for the same adder and kernel, the achieved accuracy varied
//! across the images" — output quality is *data-dependent*. The paper's
//! seven natural images are not distributable, so this crate supplies
//! seven deterministic synthetic images spanning the same content axis
//! (see `DESIGN.md` for the substitution rationale): from smooth gradients
//! (high resilience to LSB noise) to dense texture (low resilience).
//!
//! * [`images`] — the seven generators ([`images::TestImage`]).
//! * [`resilience`] — the Fig.10 experiment: SSIM between accurate-filtered
//!   and approximately-filtered versions of each image.
//!
//! # Example
//!
//! ```
//! use xlac_imaging::images::TestImage;
//! use xlac_imaging::resilience::{resilience_study, StudyConfig};
//! use xlac_adders::FullAdderKind;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let cfg = StudyConfig { size: 32, kind: FullAdderKind::Apx3, approx_lsbs: 4 };
//! let rows = resilience_study(&TestImage::ALL, cfg)?;
//! assert_eq!(rows.len(), 7);
//! // Every SSIM is a valid similarity score.
//! assert!(rows.iter().all(|r| r.ssim <= 1.0 + 1e-12));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod images;
pub mod resilience;
pub mod sobel;

pub use images::TestImage;
pub use resilience::{resilience_study, ResilienceRow, StudyConfig};
pub use sobel::SobelAccelerator;

use xlac_core::Grid;

/// Converts an 8-bit integer image into the `f64` form the quality
/// metrics consume.
#[must_use]
pub fn to_f64(image: &Grid<u64>) -> Grid<f64> {
    image.map(|&v| v as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_preserves_values() {
        let img = Grid::from_fn(4, 4, |r, c| (r * 4 + c) as u64);
        let f = to_f64(&img);
        assert_eq!(f[(2, 3)], 11.0);
        assert_eq!(f.shape(), (4, 4));
    }
}
