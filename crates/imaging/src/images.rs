//! The seven deterministic synthetic test images.
//!
//! Chosen to span the content axis that drives data-dependent resilience:
//! smooth content (gradients, blobs) tolerates LSB noise almost invisibly
//! under SSIM, while dense high-frequency content (checkerboard, noise,
//! text) exposes it. Every generator is a pure function of `(row, col,
//! size)` — or of a fixed seed for the noise images — so runs are
//! bit-reproducible.
//!
//! # Example
//!
//! ```
//! use xlac_imaging::images::TestImage;
//!
//! let img = TestImage::Gradient.render(64);
//! assert_eq!(img.shape(), (64, 64));
//! assert!(img.iter().all(|&v| v <= 255));
//! ```

use xlac_core::rng::{DefaultRng, Rng};
use xlac_core::Grid;

/// The seven Fig.10 stand-in images, ordered from smoothest to most
/// textured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TestImage {
    /// A diagonal luminance ramp — the smoothest content.
    Gradient,
    /// Soft Gaussian blobs on a mid-gray field (portrait-like smoothness).
    Blobs,
    /// Wide vertical bars (strong edges, large flat areas).
    Stripes,
    /// Low-frequency value noise (cloud-like texture).
    Clouds,
    /// Block-glyph "text" on a light background (sparse hard edges).
    Text,
    /// A fine checkerboard (maximum structured high frequency).
    Checkerboard,
    /// Uniform random noise (maximum unstructured high frequency).
    Noise,
}

impl TestImage {
    /// All seven images, smoothest first.
    pub const ALL: [TestImage; 7] = [
        TestImage::Gradient,
        TestImage::Blobs,
        TestImage::Stripes,
        TestImage::Clouds,
        TestImage::Text,
        TestImage::Checkerboard,
        TestImage::Noise,
    ];

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TestImage::Gradient => "gradient",
            TestImage::Blobs => "blobs",
            TestImage::Stripes => "stripes",
            TestImage::Clouds => "clouds",
            TestImage::Text => "text",
            TestImage::Checkerboard => "checkerboard",
            TestImage::Noise => "noise",
        }
    }

    /// Renders the image at `size × size`, 8-bit values.
    ///
    /// # Panics
    ///
    /// Panics if `size < 8`.
    #[must_use]
    pub fn render(self, size: usize) -> Grid<u64> {
        assert!(size >= 8, "images need at least 8x8 pixels");
        let n = size as f64;
        match self {
            TestImage::Gradient => Grid::from_fn(size, size, |r, c| {
                (((r + c) as f64 / (2.0 * n - 2.0)) * 255.0).round() as u64
            }),
            TestImage::Blobs => Grid::from_fn(size, size, |r, c| {
                let centers = [(0.3, 0.3, 0.18), (0.7, 0.6, 0.22), (0.45, 0.8, 0.12)];
                let (x, y) = (c as f64 / n, r as f64 / n);
                let mut v = 90.0f64;
                for (cx, cy, sigma) in centers {
                    let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                    v += 140.0 * (-d2 / (2.0 * sigma * sigma)).exp();
                }
                v.clamp(0.0, 255.0).round() as u64
            }),
            TestImage::Stripes => Grid::from_fn(size, size, |_, c| {
                if (c / (size / 8).max(1)).is_multiple_of(2) {
                    220
                } else {
                    40
                }
            }),
            TestImage::Clouds => {
                // Two octaves of bilinear value noise from a fixed seed.
                let mut rng = DefaultRng::seed_from_u64(0xC10D);
                let coarse: Vec<f64> = (0..81).map(|_| rng.gen_range(0.0..1.0)).collect();
                let fine: Vec<f64> = (0..289).map(|_| rng.gen_range(0.0..1.0)).collect();
                let sample = |grid: &[f64], cells: usize, x: f64, y: f64| -> f64 {
                    let gx = x * cells as f64;
                    let gy = y * cells as f64;
                    let (x0, y0) = (gx.floor() as usize, gy.floor() as usize);
                    let (fx, fy) = (gx - x0 as f64, gy - y0 as f64);
                    let stride = cells + 1;
                    let at = |r: usize, c: usize| grid[r.min(cells) * stride + c.min(cells)];
                    let top = at(y0, x0) * (1.0 - fx) + at(y0, x0 + 1) * fx;
                    let bot = at(y0 + 1, x0) * (1.0 - fx) + at(y0 + 1, x0 + 1) * fx;
                    top * (1.0 - fy) + bot * fy
                };
                Grid::from_fn(size, size, |r, c| {
                    let (x, y) = (c as f64 / n, r as f64 / n);
                    let v = 0.7 * sample(&coarse, 8, x, y) + 0.3 * sample(&fine, 16, x, y);
                    (v * 255.0).clamp(0.0, 255.0).round() as u64
                })
            }
            TestImage::Text => Grid::from_fn(size, size, |r, c| {
                // Rows of block glyphs: a glyph cell is dark when a simple
                // hash of its cell coordinates says so.
                let cell = (size / 16).max(2);
                let (gr, gc) = (r / cell, c / cell);
                let in_line = gr % 3 != 0; // blank line every third row
                let hash = gr.wrapping_mul(31).wrapping_add(gc.wrapping_mul(17)) % 5;
                if in_line && hash < 2 {
                    30
                } else {
                    230
                }
            }),
            TestImage::Checkerboard => {
                Grid::from_fn(size, size, |r, c| if (r + c) % 2 == 0 { 255 } else { 0 })
            }
            TestImage::Noise => {
                let mut rng = DefaultRng::seed_from_u64(0x0153);
                Grid::from_fn(size, size, |_, _| rng.gen_range(0..256))
            }
        }
    }
}

impl std::fmt::Display for TestImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_images_render_in_range() {
        for img in TestImage::ALL {
            let g = img.render(32);
            assert_eq!(g.shape(), (32, 32), "{img}");
            assert!(g.iter().all(|&v| v <= 255), "{img}");
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        for img in TestImage::ALL {
            assert_eq!(img.render(32), img.render(32), "{img}");
        }
    }

    #[test]
    fn images_are_distinct() {
        let rendered: Vec<_> = TestImage::ALL.iter().map(|i| i.render(32)).collect();
        for i in 0..rendered.len() {
            for j in (i + 1)..rendered.len() {
                assert_ne!(rendered[i], rendered[j], "{:?} vs {:?}", TestImage::ALL[i], TestImage::ALL[j]);
            }
        }
    }

    #[test]
    fn gradient_is_monotone_along_diagonal() {
        let g = TestImage::Gradient.render(64);
        for i in 1..64 {
            assert!(g[(i, i)] >= g[(i - 1, i - 1)]);
        }
        assert_eq!(g[(0, 0)], 0);
        assert_eq!(g[(63, 63)], 255);
    }

    #[test]
    fn checkerboard_alternates() {
        let g = TestImage::Checkerboard.render(16);
        assert_eq!(g[(0, 0)], 255);
        assert_eq!(g[(0, 1)], 0);
        assert_eq!(g[(1, 0)], 0);
    }

    #[test]
    fn high_frequency_images_have_more_local_variation() {
        // Mean absolute horizontal difference orders smooth < textured.
        let variation = |img: TestImage| -> f64 {
            let g = img.render(64);
            let mut total = 0.0;
            for r in 0..64 {
                for c in 1..64 {
                    total += g[(r, c)].abs_diff(g[(r, c - 1)]) as f64;
                }
            }
            total / (64.0 * 63.0)
        };
        assert!(variation(TestImage::Gradient) < variation(TestImage::Clouds));
        assert!(variation(TestImage::Clouds) < variation(TestImage::Checkerboard));
        assert!(variation(TestImage::Blobs) < variation(TestImage::Noise));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = TestImage::ALL.iter().map(|i| i.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn tiny_sizes_are_rejected() {
        let _ = TestImage::Gradient.render(4);
    }
}
