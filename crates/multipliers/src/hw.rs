//! Structural gate-level elaboration of the Wallace-tree multiplier.
//!
//! Mirrors the crate's behavioural reduction walk cell-for-cell: the same
//! partial-product order, the same carry-save pop/push schedule (which is
//! input-independent — see [`WallaceMultiplier::cell_placements`]), the
//! same sparse half-adder rule and the same final ripple carry-propagate
//! stage with the carry-out dropped. Each reduction slot inlines the cell
//! kind's [`FullAdderKind::structural_netlist`], so the elaborated design
//! is the *hardware* the cost model prices — and the reference the
//! compiled-simulation path is differentially verified against.
//!
//! Port convention matches `xlac_adders::hw`: operand `a` in inputs
//! `0..N`, operand `b` in inputs `N..2N`, product LSB-first in the `2N`
//! outputs.
//!
//! # Example
//!
//! ```
//! use xlac_multipliers::hw::wallace_netlist;
//! use xlac_multipliers::{Multiplier, WallaceMultiplier};
//! use xlac_adders::FullAdderKind;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let m = WallaceMultiplier::new(4, FullAdderKind::Apx2, 3)?;
//! let nl = wallace_netlist(&m);
//! let (a, b) = (11u64, 6u64);
//! assert_eq!(nl.eval(a | (b << 4)), m.mul(a, b));
//! # Ok(())
//! # }
//! ```

use crate::wallace::WallaceMultiplier;
use crate::Multiplier;
use xlac_adders::FullAdderKind;
use xlac_logic::{GateKind, Netlist, NetlistBuilder, Signal};

/// Elaborates a Wallace multiplier into a flat gate netlist (`2N` inputs,
/// `2N` outputs, product truncated to `2N` bits like the behavioural
/// model).
#[must_use]
pub fn wallace_netlist(m: &WallaceMultiplier) -> Netlist {
    let w = m.width();
    let cols = 2 * w;
    let mut b = NetlistBuilder::new(m.name(), 2 * w);
    let zero = b.constant(false);

    // Cell netlists are tiny; cache the two kinds in play.
    let approx_cell = m.cell_kind().structural_netlist();
    let exact_cell = FullAdderKind::Accurate.structural_netlist();
    let cell_for = |c: usize| -> &Netlist {
        if c < m.approx_columns() {
            &approx_cell
        } else {
            &exact_cell
        }
    };

    // Partial products, in the behavioural walk's column order.
    let mut columns: Vec<Vec<Signal>> = vec![Vec::new(); cols + 1];
    for i in 0..w {
        for j in 0..w {
            let pp = b.gate(GateKind::And2, &[Signal::Input(i), Signal::Input(w + j)]);
            columns[i + j].push(pp);
        }
    }

    // Carry-save reduction: the identical pop/push schedule as
    // `WallaceMultiplier::reduce`, with each (x, y, z) triple feeding an
    // inlined cell netlist (ports [a, b, cin] -> [sum, cout]).
    loop {
        let mut reduced = false;
        for c in 0..cols {
            while columns[c].len() > 2 {
                reduced = true;
                let x = columns[c].pop().expect("len >= 3");
                let y = columns[c].pop().expect("len >= 2");
                let z = columns[c].pop().expect("len >= 1");
                let outs = b.inline(cell_for(c), &[x, y, z]);
                columns[c].push(outs[0]);
                columns[c + 1].push(outs[1]);
            }
            if columns[c].len() == 2 && columns[c + 1].len() > 2 {
                reduced = true;
                let x = columns[c].pop().expect("len 2");
                let y = columns[c].pop().expect("len 1");
                let outs = b.inline(cell_for(c), &[x, y, zero]);
                columns[c].push(outs[0]);
                columns[c + 1].push(outs[1]);
            }
        }
        if !reduced {
            break;
        }
    }

    // Final carry-propagate addition of the two remaining rows — the
    // gate-for-gate mirror of the bit-sliced CPA tail (carry-out beyond
    // column 2w-1 dropped, matching the behavioural truncate).
    let mut carry = zero;
    let mut product = Vec::with_capacity(cols);
    for col in columns.iter().take(cols) {
        let r0 = col.first().copied().unwrap_or(zero);
        let r1 = col.get(1).copied().unwrap_or(zero);
        let axb = b.gate(GateKind::Xor2, &[r0, r1]);
        product.push(b.gate(GateKind::Xor2, &[axb, carry]));
        let g = b.gate(GateKind::And2, &[r0, r1]);
        let p = b.gate(GateKind::And2, &[axb, carry]);
        carry = b.gate(GateKind::Or2, &[g, p]);
    }
    for s in product {
        b.output(s);
    }
    b.finish().expect("wallace elaboration is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultiplierX64;
    use xlac_core::lanes::{from_planes, to_planes, LANES};
    use xlac_core::rng::{DefaultRng, Rng};

    #[test]
    fn exact_wallace_netlist_is_exhaustively_equivalent() {
        let m = WallaceMultiplier::new(4, FullAdderKind::Accurate, 0).unwrap();
        let nl = wallace_netlist(&m);
        assert_eq!(nl.n_inputs(), 8);
        assert_eq!(nl.n_outputs(), 8);
        for a in 0u64..16 {
            for b in 0u64..16 {
                assert_eq!(nl.eval(a | (b << 4)), a * b, "{a}x{b}");
            }
        }
    }

    #[test]
    fn approximate_wallace_netlists_match_behavioural_models() {
        for (kind, cols) in [
            (FullAdderKind::Apx1, 3),
            (FullAdderKind::Apx2, 5),
            (FullAdderKind::Apx4, 4),
            (FullAdderKind::Apx5, 6),
        ] {
            let m = WallaceMultiplier::new(4, kind, cols).unwrap();
            let nl = wallace_netlist(&m);
            for a in 0u64..16 {
                for b in 0u64..16 {
                    assert_eq!(nl.eval(a | (b << 4)), m.mul(a, b), "{kind}: {a}x{b}");
                }
            }
        }
    }

    #[test]
    fn wallace_8x8_netlist_matches_x64_model_on_random_lanes() {
        let m = WallaceMultiplier::new(8, FullAdderKind::Apx2, 5).unwrap();
        let nl = wallace_netlist(&m);
        let mut rng = DefaultRng::seed_from_u64(0xDAC6);
        let mut a = [0u64; LANES];
        let mut b = [0u64; LANES];
        rng.fill_u64(&mut a);
        rng.fill_u64(&mut b);
        let a = a.map(|v| v & 0xFF);
        let b = b.map(|v| v & 0xFF);
        let model = from_planes(&m.mul_x64(&to_planes(&a, 8), &to_planes(&b, 8)));
        for j in 0..LANES {
            assert_eq!(nl.eval(a[j] | (b[j] << 8)), model[j], "lane {j}");
        }
    }
}
