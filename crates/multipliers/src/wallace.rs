//! Wallace-tree multipliers with approximate reduction columns.
//!
//! The classic fast multiplier: generate all `N²` partial-product bits,
//! reduce each bit column with carry-save full/half adders until at most
//! two rows remain, then run one carry-propagate addition. Following the
//! approximate Wallace-tree literature the paper cites (Bhardwaj et al.,
//! ISQED'14), the reduction cells of the **low-order columns** can be
//! swapped for an approximate full-adder kind — errors stay confined to
//! the least-significant product bits while every swapped cell saves area
//! and power.
//!
//! # Example
//!
//! ```
//! use xlac_multipliers::{Multiplier, WallaceMultiplier};
//! use xlac_adders::FullAdderKind;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let exact = WallaceMultiplier::new(8, FullAdderKind::Accurate, 0)?;
//! assert_eq!(exact.mul(250, 99), 250 * 99);
//!
//! let approx = WallaceMultiplier::new(8, FullAdderKind::Apx4, 4)?;
//! assert!(approx.hw_cost().area_ge < exact.hw_cost().area_ge);
//! # Ok(())
//! # }
//! ```

use crate::{Multiplier, MultiplierX64};
use xlac_adders::FullAdderKind;
use xlac_core::bits;
use xlac_core::characterization::HwCost;
use xlac_core::error::{Result, XlacError};

/// One reduction-cell instantiation of a Wallace tree: which product
/// column it reduces (bit weight `2^column`), whether the slot is a half
/// adder (`cin` tied to 0), and the cell kind wired there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPlacement {
    /// Product column index; the cell's sum lands at weight `2^column`.
    pub column: usize,
    /// `true` when the slot is a half adder (third input tied to 0).
    pub half_adder: bool,
    /// The full-adder kind reducing this slot.
    pub kind: FullAdderKind,
}

/// A Wallace-tree multiplier whose `approx_cols` low columns reduce with
/// an approximate full-adder kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallaceMultiplier {
    width: usize,
    kind: FullAdderKind,
    approx_cols: usize,
}

impl WallaceMultiplier {
    /// Creates an `width × width` Wallace multiplier. Columns
    /// `0 .. approx_cols` of the reduction tree use `kind`; the remaining
    /// columns and the final carry-propagate adder stay accurate.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidWidth`] when `width` is outside `2..=32`
    /// or [`XlacError::InvalidConfiguration`] when `approx_cols` exceeds
    /// the `2·width` product columns.
    pub fn new(width: usize, kind: FullAdderKind, approx_cols: usize) -> Result<Self> {
        if !(2..=32).contains(&width) {
            return Err(XlacError::InvalidWidth { width, max: 32 });
        }
        if approx_cols > 2 * width {
            return Err(XlacError::InvalidConfiguration(format!(
                "{approx_cols} approximate columns exceed the {} product columns",
                2 * width
            )));
        }
        Ok(WallaceMultiplier { width, kind, approx_cols })
    }

    /// The reduction-cell kind for the approximate columns.
    #[must_use]
    pub fn cell_kind(&self) -> FullAdderKind {
        self.kind
    }

    /// Number of approximate low columns.
    #[must_use]
    pub fn approx_columns(&self) -> usize {
        self.approx_cols
    }

    fn cell_for(&self, column: usize) -> FullAdderKind {
        if column < self.approx_cols {
            self.kind
        } else {
            FullAdderKind::Accurate
        }
    }

    /// The exact sequence of reduction-cell instantiations the tree uses.
    /// Placement is input-independent (the schedule depends only on column
    /// heights), so this is the structural netlist of the reduction stage —
    /// the seed data for static error-bound analysis.
    #[must_use]
    pub fn cell_placements(&self) -> Vec<CellPlacement> {
        let mut placements = Vec::new();
        self.reduce(None, Some(&mut placements));
        placements
    }

    /// Runs the reduction, either on live bits (`Some(a, b)`) or purely
    /// structurally to count cells (`None`). Returns
    /// `(product, fa_count, ha_count)` where the counts are per-column
    /// totals split into (approximate, accurate) pairs. When `placements`
    /// is given, every cell instantiation is recorded in schedule order.
    fn reduce(
        &self,
        operands: Option<(u64, u64)>,
        mut placements: Option<&mut Vec<CellPlacement>>,
    ) -> (u64, [usize; 2], [usize; 2]) {
        let w = self.width;
        let cols = 2 * w;
        // columns[c] holds the live bits (or placeholder 0s in structural
        // mode) awaiting reduction in column c.
        let mut columns: Vec<Vec<u64>> = vec![Vec::new(); cols + 1];
        for i in 0..w {
            for j in 0..w {
                let bit = match operands {
                    Some((a, b)) => bits::bit(a, i) & bits::bit(b, j),
                    None => 0,
                };
                columns[i + j].push(bit);
            }
        }

        let mut fa = [0usize; 2]; // [approximate, accurate]
        let mut ha = [0usize; 2];
        // Carry-save reduction until every column has at most 2 bits.
        loop {
            let mut reduced = false;
            for c in 0..cols {
                while columns[c].len() > 2 {
                    reduced = true;
                    let kind = self.cell_for(c);
                    let slot = usize::from(kind.is_accurate());
                    if columns[c].len() >= 3 {
                        let x = columns[c].pop().expect("len >= 3");
                        let y = columns[c].pop().expect("len >= 2");
                        let z = columns[c].pop().expect("len >= 1");
                        let (s, carry) = kind.eval(x, y, z);
                        columns[c].push(s);
                        columns[c + 1].push(carry);
                        fa[slot] += 1;
                        if let Some(rec) = placements.as_deref_mut() {
                            rec.push(CellPlacement { column: c, half_adder: false, kind });
                        }
                    }
                }
                // Pair off exactly-3→handled above; a half adder fires when
                // a column of exactly 2 would otherwise stall a longer
                // column's carry — classic Wallace uses HAs sparsely; we
                // reduce any 2-bit column whose neighbour still overflows.
                if columns[c].len() == 2 && columns[c + 1].len() > 2 {
                    reduced = true;
                    let kind = self.cell_for(c);
                    let slot = usize::from(kind.is_accurate());
                    let x = columns[c].pop().expect("len 2");
                    let y = columns[c].pop().expect("len 1");
                    let (s, carry) = kind.eval(x, y, 0);
                    columns[c].push(s);
                    columns[c + 1].push(carry);
                    ha[slot] += 1;
                    if let Some(rec) = placements.as_deref_mut() {
                        rec.push(CellPlacement { column: c, half_adder: true, kind });
                    }
                }
            }
            if !reduced {
                break;
            }
        }

        // Final carry-propagate addition of the two remaining rows.
        let mut row0 = 0u64;
        let mut row1 = 0u64;
        for (c, col) in columns.iter().enumerate().take(cols) {
            if let Some(&b0) = col.first() {
                row0 |= b0 << c;
            }
            if let Some(&b1) = col.get(1) {
                row1 |= b1 << c;
            }
        }
        // At width 32 the two rows span all 64 bits, so their sum can
        // carry past u64; the wrap is exactly the mod-2^{2w} truncation.
        let product = bits::truncate(row0.wrapping_add(row1), cols);
        (product, fa, ha)
    }

    /// Bit-sliced mirror of `reduce` on live bits: the schedule is
    /// input-independent, so the identical pop/push walk runs on 64-lane
    /// words with [`FullAdderKind::eval_x64`] cells, followed by an exact
    /// bit-sliced carry-propagate add (carry-out dropped, as in the
    /// scalar `truncate`).
    fn reduce_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let w = self.width;
        let cols = 2 * w;
        let plane = |p: &[u64], i: usize| p.get(i).copied().unwrap_or(0);
        let mut columns: Vec<Vec<u64>> = vec![Vec::new(); cols + 1];
        for i in 0..w {
            for j in 0..w {
                columns[i + j].push(plane(a, i) & plane(b, j));
            }
        }

        loop {
            let mut reduced = false;
            for c in 0..cols {
                while columns[c].len() > 2 {
                    reduced = true;
                    let kind = self.cell_for(c);
                    let x = columns[c].pop().expect("len >= 3");
                    let y = columns[c].pop().expect("len >= 2");
                    let z = columns[c].pop().expect("len >= 1");
                    let (s, carry) = kind.eval_x64(x, y, z);
                    columns[c].push(s);
                    columns[c + 1].push(carry);
                }
                if columns[c].len() == 2 && columns[c + 1].len() > 2 {
                    reduced = true;
                    let kind = self.cell_for(c);
                    let x = columns[c].pop().expect("len 2");
                    let y = columns[c].pop().expect("len 1");
                    let (s, carry) = kind.eval_x64(x, y, 0);
                    columns[c].push(s);
                    columns[c + 1].push(carry);
                }
            }
            if !reduced {
                break;
            }
        }

        let mut out = Vec::with_capacity(cols);
        let mut carry = 0u64;
        for col in columns.iter().take(cols) {
            let r0 = col.first().copied().unwrap_or(0);
            let r1 = col.get(1).copied().unwrap_or(0);
            let axb = r0 ^ r1;
            out.push(axb ^ carry);
            carry = (r0 & r1) | (axb & carry);
        }
        out
    }
}

impl MultiplierX64 for WallaceMultiplier {
    fn mul_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        self.reduce_x64(a, b)
    }
}

impl Multiplier for WallaceMultiplier {
    fn width(&self) -> usize {
        self.width
    }

    fn mul(&self, a: u64, b: u64) -> u64 {
        let a = bits::truncate(a, self.width);
        let b = bits::truncate(b, self.width);
        self.reduce(Some((a, b)), None).0
    }

    fn name(&self) -> String {
        if self.approx_cols == 0 {
            format!("Wallace(N={})", self.width)
        } else {
            format!("Wallace(N={},{}cols {})", self.width, self.approx_cols, self.kind)
        }
    }

    fn hw_cost(&self) -> HwCost {
        let (_, fa, ha) = self.reduce(None, None);
        let and_gate = HwCost { area_ge: 1.33, power_nw: 60.0, delay: 1.5 };
        let partials = and_gate * (self.width * self.width) as f64;
        let approx_cell = self.kind.hw_cost();
        let exact_cell = FullAdderKind::Accurate.hw_cost();
        // Half adders cost ~60 % of a full adder.
        let cells = approx_cell * fa[0] as f64
            + exact_cell * fa[1] as f64
            + approx_cell * (ha[0] as f64 * 0.6)
            + exact_cell * (ha[1] as f64 * 0.6);
        // Final 2w-bit carry-propagate adder.
        let cpa = exact_cell * (2 * self.width) as f64;
        // Delay: log-depth reduction + final CPA.
        let depth = ((self.width * self.width) as f64).log(1.5).ceil();
        let mut cost = partials + cells + cpa;
        cost.delay = exact_cell.delay * depth + cpa.delay * 0.25;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_wallace_4x4_exhaustive() {
        let m = WallaceMultiplier::new(4, FullAdderKind::Accurate, 0).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                assert_eq!(m.mul(a, b), a * b, "{a}x{b}");
            }
        }
    }

    #[test]
    fn exact_wallace_8x8_exhaustive() {
        let m = WallaceMultiplier::new(8, FullAdderKind::Accurate, 0).unwrap();
        for a in 0u64..256 {
            for b in 0u64..256 {
                assert_eq!(m.mul(a, b), a * b, "{a}x{b}");
            }
        }
    }

    #[test]
    fn approximate_columns_confine_errors() {
        // Errors from k approximate columns cannot reach far above bit k:
        // the worst corruption is a wrong carry chain seeded below bit k.
        let k = 4usize;
        let m = WallaceMultiplier::new(8, FullAdderKind::Apx5, k).unwrap();
        let mut max_err = 0u64;
        for a in (0u64..256).step_by(3) {
            for b in (0u64..256).step_by(7) {
                max_err = max_err.max(m.mul(a, b).abs_diff(a * b));
            }
        }
        assert!(max_err > 0, "approximation must actually bite");
        assert!(max_err < 1 << (k + 4), "errors must stay near the low columns: {max_err}");
    }

    #[test]
    fn zero_approx_columns_is_exact_for_every_kind() {
        for kind in FullAdderKind::APPROXIMATE {
            let m = WallaceMultiplier::new(6, kind, 0).unwrap();
            for (a, b) in [(63u64, 63u64), (17, 42), (1, 1)] {
                assert_eq!(m.mul(a, b), a * b, "{kind}");
            }
        }
    }

    #[test]
    fn more_approx_columns_cost_less() {
        let mut last = f64::INFINITY;
        for cols in [0usize, 4, 8, 12] {
            let area = WallaceMultiplier::new(8, FullAdderKind::Apx5, cols).unwrap().hw_cost().area_ge;
            assert!(area <= last, "area must not grow with approximation");
            last = area;
        }
    }

    #[test]
    fn validation() {
        assert!(WallaceMultiplier::new(1, FullAdderKind::Accurate, 0).is_err());
        assert!(WallaceMultiplier::new(33, FullAdderKind::Accurate, 0).is_err());
        assert!(WallaceMultiplier::new(8, FullAdderKind::Accurate, 17).is_err());
        // Widths 17..=32 are now valid (the error calculus certifies
        // them); spot-check correctness at the 32-bit ceiling.
        let wide = WallaceMultiplier::new(32, FullAdderKind::Accurate, 0).unwrap();
        for (a, b) in [(u32::MAX as u64, u32::MAX as u64), (0xDEAD_BEEF, 0x1234_5678)] {
            assert_eq!(wide.mul(a, b), a.wrapping_mul(b));
        }
    }

    #[test]
    fn structural_pass_matches_live_pass_cell_counts() {
        let m = WallaceMultiplier::new(8, FullAdderKind::Apx2, 5).unwrap();
        let (_, fa_a, ha_a) = m.reduce(None, None);
        let (_, fa_b, ha_b) = m.reduce(Some((123, 231)), None);
        assert_eq!(fa_a, fa_b, "cell placement is input-independent");
        assert_eq!(ha_a, ha_b);
    }

    #[test]
    fn cell_placements_agree_with_reduction_counts() {
        let m = WallaceMultiplier::new(8, FullAdderKind::Apx2, 5).unwrap();
        let placements = m.cell_placements();
        let (_, fa, ha) = m.reduce(None, None);
        let fa_total = placements.iter().filter(|p| !p.half_adder).count();
        let ha_total = placements.iter().filter(|p| p.half_adder).count();
        assert_eq!(fa_total, fa[0] + fa[1]);
        assert_eq!(ha_total, ha[0] + ha[1]);
        // Approximate cells sit exactly in the approximated columns.
        for p in &placements {
            assert_eq!(p.kind.is_accurate(), p.column >= 5, "column {}", p.column);
        }
        // Every placement stays within the 2w product columns.
        assert!(placements.iter().all(|p| p.column < 16));
    }

    #[test]
    fn wallace_is_faster_than_recursive_composition() {
        use crate::{Mul2x2Kind, RecursiveMultiplier, SumMode};
        let wal = WallaceMultiplier::new(8, FullAdderKind::Accurate, 0).unwrap();
        let rec = RecursiveMultiplier::new(8, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap();
        assert!(wal.hw_cost().delay < rec.hw_cost().delay);
    }

    #[test]
    fn names() {
        assert_eq!(
            WallaceMultiplier::new(8, FullAdderKind::Apx1, 3).unwrap().name(),
            "Wallace(N=8,3cols ApxFA1)"
        );
        assert_eq!(WallaceMultiplier::new(8, FullAdderKind::Accurate, 0).unwrap().name(), "Wallace(N=8)");
    }
}
