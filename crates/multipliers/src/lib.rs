//! # xlac-multipliers — approximate multipliers (Section 5 of the paper)
//!
//! Efficient multiplier designs compose small multipliers with an adder
//! tree for partial-product summation; approximating either ingredient
//! yields an approximate multiplier. This crate implements both axes:
//!
//! * [`mul2x2`] — the elementary 2×2 blocks of **Fig.5**: the accurate
//!   multiplier, the state-of-the-art Kulkarni design (`ApxMulSoA`, drops
//!   the 4th product bit so 3×3 = 7, max error 2) and the paper's own
//!   design (`ApxMulOur`, routes the MSB product to the LSB, max error 1 in
//!   three cases), plus the accuracy-*configurable* variants with their
//!   correction stages.
//! * [`multi_bit`] — recursive composition: an `N×N` multiplier from four
//!   `N/2 × N/2` sub-multipliers and approximate adders for the three
//!   partial-product additions (the construction behind **Fig.6**).
//! * [`wallace`] — a Wallace-tree multiplier whose low-order reduction
//!   columns can use approximate full-adder cells (the Bhardwaj ISQED'14
//!   style referenced by the paper).
//!
//! # Example
//!
//! ```
//! use xlac_multipliers::{Mul2x2Kind, Multiplier, RecursiveMultiplier, SumMode};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! // The paper's 2x2 designs.
//! assert_eq!(Mul2x2Kind::Accurate.mul(3, 3), 9);
//! assert_eq!(Mul2x2Kind::ApxSoA.mul(3, 3), 7);     // drops the 4th bit
//! assert_eq!(Mul2x2Kind::ApxOur.mul(3, 3), 9);     // 3x3 stays exact…
//! assert_eq!(Mul2x2Kind::ApxOur.mul(1, 1), 0);     // …but 1x1 loses its LSB
//!
//! // An 8x8 multiplier from ApxOur blocks with accurate summation.
//! // ApxOur only ever drops product mass, so it underestimates; each
//! // erring 2x2 block contributes 1 scaled by its digit-position weight.
//! let m = RecursiveMultiplier::new(8, Mul2x2Kind::ApxOur, SumMode::Accurate)?;
//! let p = m.mul(200, 100);
//! assert!(p <= 20_000 && p > 15_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hw;
pub mod mul2x2;
pub mod multi_bit;
pub mod signed;
pub mod truncated;
pub mod wallace;

pub use mul2x2::{ConfigurableMul2x2, Mul2x2Kind};
pub use multi_bit::{RecursiveMultiplier, SumMode};
pub use signed::SignedMultiplier;
pub use truncated::TruncatedMultiplier;
pub use wallace::{CellPlacement, WallaceMultiplier};

use xlac_core::characterization::HwCost;

/// A combinational two-operand multiplier of fixed operand width.
///
/// Implementations return the full `2 × width`-bit product. Object-safe so
/// accelerator datapaths can swap multiplier architectures at runtime.
pub trait Multiplier {
    /// Operand width in bits.
    fn width(&self) -> usize;

    /// Multiplies two `width`-bit operands (operands are truncated to
    /// `width` bits first).
    fn mul(&self, a: u64, b: u64) -> u64;

    /// Human-readable instance name.
    fn name(&self) -> String;

    /// Hardware cost under the workspace cost model.
    fn hw_cost(&self) -> HwCost;

    /// The exact reference product.
    fn exact(&self, a: u64, b: u64) -> u64 {
        let w = self.width();
        xlac_core::bits::truncate(a, w) * xlac_core::bits::truncate(b, w)
    }
}

/// Bit-sliced 64-lane companion to [`Multiplier`].
///
/// Operand batches are bit-plane vectors (`xlac_core::lanes` layout):
/// `a[i]` holds bit `i` of all 64 lane values; missing planes read as
/// zero and planes at index `>= width` are ignored (the truncate-on-input
/// semantics of [`Multiplier::mul`]). The result has exactly `2 × width`
/// planes, and for every lane `j`
///
/// ```text
/// lanes::lane(&m.mul_x64(&a, &b), j) == m.mul(lanes::lane(&a, j), lanes::lane(&b, j))
/// ```
///
/// `Sync` is a supertrait so `dyn MultiplierX64` instances can be shared
/// across the `xlac-sim` sweep threads.
pub trait MultiplierX64: Multiplier + Sync {
    /// Multiplies two `width`-bit 64-lane operand batches, returning
    /// `2 × width` product planes.
    fn mul_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64>;
}

impl<T: MultiplierX64 + ?Sized> MultiplierX64 for &T {
    fn mul_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        (**self).mul_x64(a, b)
    }
}

impl<T: Multiplier + ?Sized> Multiplier for &T {
    fn width(&self) -> usize {
        (**self).width()
    }
    fn mul(&self, a: u64, b: u64) -> u64 {
        (**self).mul(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn hw_cost(&self) -> HwCost {
        (**self).hw_cost()
    }
}

impl<T: Multiplier + ?Sized> Multiplier for Box<T> {
    fn width(&self) -> usize {
        (**self).width()
    }
    fn mul(&self, a: u64, b: u64) -> u64 {
        (**self).mul(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn hw_cost(&self) -> HwCost {
        (**self).hw_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let m: Box<dyn Multiplier> =
            Box::new(RecursiveMultiplier::new(4, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap());
        assert_eq!(m.mul(15, 15), 225);
        assert_eq!(m.exact(15, 15), 225);
        let by_ref: &dyn Multiplier = &*m;
        assert_eq!(by_ref.mul(3, 5), 15);
    }
}
