//! Signed multiplication on top of any unsigned (approximate) core.
//!
//! DSP kernels — the motion-compensation residuals and filter taps of the
//! paper's case studies — are signed. [`SignedMultiplier`] wraps any
//! [`Multiplier`] core in the sign-magnitude scheme hardware uses when the
//! core is an unsigned array: negate-to-magnitude stages on the inputs,
//! an XOR of the sign bits, and a conditional negation of the product.
//! The approximation characteristics of the core carry over symmetrically
//! to both sign quadrants.
//!
//! # Example
//!
//! ```
//! use xlac_multipliers::{Mul2x2Kind, Multiplier, RecursiveMultiplier, SignedMultiplier, SumMode};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let core = RecursiveMultiplier::new(8, Mul2x2Kind::Accurate, SumMode::Accurate)?;
//! let signed = SignedMultiplier::new(core);
//! assert_eq!(signed.mul_signed(-5, 7), -35);
//! assert_eq!(signed.mul_signed(-5, -7), 35);
//! # Ok(())
//! # }
//! ```

use crate::Multiplier;
use xlac_core::characterization::HwCost;

/// A sign-magnitude wrapper turning an unsigned core into a signed
/// multiplier for `width`-bit two's-complement operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedMultiplier<M> {
    core: M,
}

impl<M: Multiplier> SignedMultiplier<M> {
    /// Wraps an unsigned multiplier core.
    #[must_use]
    pub fn new(core: M) -> Self {
        SignedMultiplier { core }
    }

    /// The wrapped core.
    #[must_use]
    pub fn core(&self) -> &M {
        &self.core
    }

    /// Consumes the wrapper, returning the core.
    #[must_use]
    pub fn into_inner(self) -> M {
        self.core
    }

    /// Operand width of the signed inputs (same as the core's).
    #[must_use]
    pub fn width(&self) -> usize {
        self.core.width()
    }

    /// Multiplies two signed operands. Operands must fit the core width
    /// as two's-complement values (i.e. in `-2^(w-1) .. 2^(w-1)`); out-of-
    /// range magnitudes wrap like hardware registers.
    ///
    /// The magnitude product runs through the (possibly approximate) core;
    /// sign handling is exact, as in real sign-magnitude datapaths.
    #[must_use]
    pub fn mul_signed(&self, a: i64, b: i64) -> i64 {
        let w = self.core.width();
        let mag = |v: i64| -> u64 { xlac_core::bits::truncate(v.unsigned_abs(), w) };
        let product = self.core.mul(mag(a), mag(b)) as i64;
        if (a < 0) ^ (b < 0) {
            -product
        } else {
            product
        }
    }

    /// The exact signed reference product (magnitudes truncated to the
    /// core width, matching [`SignedMultiplier::mul_signed`]'s register
    /// semantics).
    #[must_use]
    pub fn exact_signed(&self, a: i64, b: i64) -> i64 {
        let w = self.core.width();
        let mag = |v: i64| -> i64 { xlac_core::bits::truncate(v.unsigned_abs(), w) as i64 };
        let product = mag(a) * mag(b);
        if (a < 0) ^ (b < 0) {
            -product
        } else {
            product
        }
    }

    /// Hardware cost: the core plus two input conditional-negate stages
    /// and one output conditional-negate stage (an XOR row + increment
    /// each), scaled by the respective widths.
    #[must_use]
    pub fn hw_cost(&self) -> HwCost {
        let w = self.core.width() as f64;
        let negate_per_bit = HwCost { area_ge: 2.9, power_nw: 120.0, delay: 0.3 };
        self.core.hw_cost() + negate_per_bit * (2.0 * w + 2.0 * w)
    }

    /// Instance name, e.g. `"Signed(RecMul(N=8,AccMul))"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("Signed({})", self.core.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mul2x2Kind, RecursiveMultiplier, SumMode, TruncatedMultiplier};

    fn exact8() -> SignedMultiplier<RecursiveMultiplier> {
        SignedMultiplier::new(
            RecursiveMultiplier::new(8, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap(),
        )
    }

    #[test]
    fn all_four_sign_quadrants() {
        let m = exact8();
        for (a, b) in [(5i64, 7i64), (-5, 7), (5, -7), (-5, -7), (0, -9), (-127, 127)] {
            assert_eq!(m.mul_signed(a, b), a * b, "{a} * {b}");
        }
    }

    #[test]
    fn exhaustive_signed_range() {
        let m = SignedMultiplier::new(
            RecursiveMultiplier::new(4, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap(),
        );
        for a in -8i64..8 {
            for b in -8i64..8 {
                assert_eq!(m.mul_signed(a, b), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn approximate_core_errors_are_sign_symmetric() {
        let m = SignedMultiplier::new(
            RecursiveMultiplier::new(8, Mul2x2Kind::ApxOur, SumMode::Accurate).unwrap(),
        );
        for a in (1i64..128).step_by(13) {
            for b in (1i64..128).step_by(17) {
                let pp = m.mul_signed(a, b);
                let nn = m.mul_signed(-a, -b);
                let pn = m.mul_signed(a, -b);
                assert_eq!(pp, nn, "({a},{b})");
                assert_eq!(pp, -pn, "({a},{b})");
            }
        }
    }

    #[test]
    fn approximate_error_magnitude_carries_over() {
        let core = TruncatedMultiplier::new(8, 5, false).unwrap();
        let m = SignedMultiplier::new(core);
        let mut worst = 0i64;
        for a in (-127i64..=127).step_by(11) {
            for b in (-127i64..=127).step_by(7) {
                worst = worst.max((m.mul_signed(a, b) - m.exact_signed(a, b)).abs());
            }
        }
        assert!(worst > 0, "truncated core must err");
        assert!(worst < 1 << 8, "error bounded by the dropped columns");
    }

    #[test]
    fn cost_exceeds_core() {
        let core = RecursiveMultiplier::new(8, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap();
        let core_cost = core.hw_cost();
        let m = SignedMultiplier::new(core);
        assert!(m.hw_cost().area_ge > core_cost.area_ge);
    }

    #[test]
    fn name_and_accessors() {
        let m = exact8();
        assert!(m.name().starts_with("Signed(RecMul"));
        assert_eq!(m.width(), 8);
        assert_eq!(m.core().width(), 8);
    }
}
