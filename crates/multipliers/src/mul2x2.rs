//! The elementary 2×2 multipliers of Fig.5.
//!
//! * `Accurate` — the exact 4-bit-product multiplier.
//! * `ApxSoA` — the Kulkarni (VLSI Design'11) design the paper cites as
//!   state of the art: the 4th product bit is eliminated, so `3×3 = 7`
//!   instead of 9 — a single error case with **max error value 2**.
//! * `ApxOur` — the paper's design for workloads that bound the *maximum
//!   error value* at 1: the MSB product bit (`a1·a0·b1·b0`, set only for
//!   3×3) is **wired to the LSB**, deleting the `a0·b0` gate. `3×3` stays
//!   exact; `1×1`, `1×3` and `3×1` lose their LSB — three error cases,
//!   max error 1.
//!
//! The configurable variants ([`ConfigurableMul2x2`]) add the correction
//! stage Fig.5 names: an *adder* for `CfgMulSoA` (re-inserts the dropped
//! 2³ term) and an *inverter-class* fix for `CfgMulOur` (restores
//! `p0 = a0·b0`), which is why `CfgMulOur` is the cheaper configurable
//! design.
//!
//! # Example
//!
//! ```
//! use xlac_multipliers::{ConfigurableMul2x2, Mul2x2Kind};
//!
//! let cfg = ConfigurableMul2x2::new(Mul2x2Kind::ApxOur);
//! assert_eq!(cfg.mul(3, 1, false), 2); // approximate mode: LSB lost
//! assert_eq!(cfg.mul(3, 1, true), 3);  // accurate mode: corrected
//! ```

use crate::Multiplier;
use std::fmt;
use std::sync::OnceLock;
use xlac_core::characterization::HwCost;
use xlac_logic::synth::characterize;
use xlac_logic::{GateKind, Netlist, NetlistBuilder, TruthTable};

/// The three (non-configurable) 2×2 multiplier designs of Fig.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mul2x2Kind {
    /// Exact 2×2 multiplier (`AccMul`).
    Accurate,
    /// Kulkarni's under-designed multiplier (`ApxMulSoA`): 3×3 → 7.
    ApxSoA,
    /// The paper's multiplier (`ApxMulOur`): MSB wired to LSB.
    ApxOur,
}

impl Mul2x2Kind {
    /// All three kinds, in Fig.5 order.
    pub const ALL: [Mul2x2Kind; 3] = [Mul2x2Kind::Accurate, Mul2x2Kind::ApxSoA, Mul2x2Kind::ApxOur];

    /// Multiplies two 2-bit operands (values 0..=3), returning the 4-bit
    /// (possibly approximate) product.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when an operand exceeds 3.
    #[inline]
    #[must_use]
    pub fn mul(self, a: u64, b: u64) -> u64 {
        debug_assert!(a <= 3 && b <= 3, "2x2 operands must be 2-bit");
        match self {
            Mul2x2Kind::Accurate => a * b,
            Mul2x2Kind::ApxSoA => {
                // Structural form with the 4th bit eliminated:
                // p2 = a1·b1, p1 = a1·b0 + a0·b1, p0 = a0·b0 — so 3×3
                // produces 111 = 7, every other pair is exact.
                let (a0, a1) = (a & 1, (a >> 1) & 1);
                let (b0, b1) = (b & 1, (b >> 1) & 1);
                (a0 & b0) | (((a1 & b0) | (a0 & b1)) << 1) | ((a1 & b1) << 2)
            }
            Mul2x2Kind::ApxOur => {
                let exact = a * b;
                let p3 = (exact >> 3) & 1;
                (exact & 0b1110) | p3
            }
        }
    }

    /// Evaluates the 2×2 block on 64 independent lanes at once: each
    /// argument is one operand *bit* across 64 lanes and the result is
    /// the four product bit-planes `[p0, p1, p2, p3]`.
    ///
    /// Each arm is the gate structure of the Fig.5 design (the same gates
    /// as [`Mul2x2Kind::netlist`]); the differential tests pin every lane
    /// to [`Mul2x2Kind::mul`].
    #[inline]
    #[must_use]
    pub fn mul_x64(self, a0: u64, a1: u64, b0: u64, b1: u64) -> [u64; 4] {
        match self {
            Mul2x2Kind::Accurate => {
                let t1 = a1 & b0;
                let t2 = a0 & b1;
                let c = t1 & t2;
                let p11 = a1 & b1;
                [a0 & b0, t1 ^ t2, p11 ^ c, p11 & c]
            }
            Mul2x2Kind::ApxSoA => [a0 & b0, (a1 & b0) | (a0 & b1), a1 & b1, 0],
            Mul2x2Kind::ApxOur => {
                // Accurate structure with the a0·b0 gate deleted and the
                // MSB (set only for 3×3) wired to the LSB position too.
                let t1 = a1 & b0;
                let t2 = a0 & b1;
                let c = t1 & t2;
                let p11 = a1 & b1;
                let p3 = p11 & c;
                [p3, t1 ^ t2, p11 ^ c, p3]
            }
        }
    }

    /// The design's truth table (4 inputs `a0 a1 b0 b1`, 4 outputs).
    #[must_use]
    pub fn truth_table(self) -> TruthTable {
        TruthTable::from_fn(4, 4, |x| {
            let a = x & 0b11;
            let b = (x >> 2) & 0b11;
            self.mul(a, b)
        })
    }

    /// Number of operand pairs with a wrong product (Fig.5: 0, 1, 3).
    #[must_use]
    pub fn error_cases(self) -> usize {
        (0u64..4)
            .flat_map(|a| (0u64..4).map(move |b| (a, b)))
            .filter(|&(a, b)| self.mul(a, b) != a * b)
            .count()
    }

    /// Maximum `|approx − exact|` over all operand pairs (Fig.5: 0, 2, 1).
    #[must_use]
    pub fn max_error_value(self) -> u64 {
        (0u64..4)
            .flat_map(|a| (0u64..4).map(move |b| (a, b)))
            .map(|(a, b)| self.mul(a, b).abs_diff(a * b))
            .max()
            .expect("non-empty operand space")
    }

    /// A structural gate netlist of the design (inputs `a0 a1 b0 b1`,
    /// outputs `p0..p3`).
    #[must_use]
    pub fn netlist(self) -> Netlist {
        let mut nb = NetlistBuilder::new(self.to_string(), 4);
        let (a0, a1, b0, b1) = (nb.input(0), nb.input(1), nb.input(2), nb.input(3));
        match self {
            Mul2x2Kind::Accurate => {
                let p00 = nb.gate(GateKind::And2, &[a0, b0]);
                let p10 = nb.gate(GateKind::And2, &[a1, b0]);
                let p01 = nb.gate(GateKind::And2, &[a0, b1]);
                let p11 = nb.gate(GateKind::And2, &[a1, b1]);
                let p1 = nb.gate(GateKind::Xor2, &[p10, p01]);
                let c = nb.gate(GateKind::And2, &[p10, p01]);
                let p2 = nb.gate(GateKind::Xor2, &[p11, c]);
                let p3 = nb.gate(GateKind::And2, &[p11, c]);
                nb.output(p00);
                nb.output(p1);
                nb.output(p2);
                nb.output(p3);
            }
            Mul2x2Kind::ApxSoA => {
                // Kulkarni: p2 = a1·b1, p1 = a1·b0 + a0·b1, p0 = a0·b0,
                // p3 eliminated.
                let p00 = nb.gate(GateKind::And2, &[a0, b0]);
                let p10 = nb.gate(GateKind::And2, &[a1, b0]);
                let p01 = nb.gate(GateKind::And2, &[a0, b1]);
                let p2 = nb.gate(GateKind::And2, &[a1, b1]);
                let p1 = nb.gate(GateKind::Or2, &[p10, p01]);
                let zero = nb.constant(false);
                nb.output(p00);
                nb.output(p1);
                nb.output(p2);
                nb.output(zero);
            }
            Mul2x2Kind::ApxOur => {
                // Accurate structure minus the a0·b0 gate; p0 = p3 wire.
                let p10 = nb.gate(GateKind::And2, &[a1, b0]);
                let p01 = nb.gate(GateKind::And2, &[a0, b1]);
                let p11 = nb.gate(GateKind::And2, &[a1, b1]);
                let p1 = nb.gate(GateKind::Xor2, &[p10, p01]);
                let c = nb.gate(GateKind::And2, &[p10, p01]);
                let p2 = nb.gate(GateKind::Xor2, &[p11, c]);
                let p3 = nb.gate(GateKind::And2, &[p11, c]);
                nb.output(p3); // p0 := p3
                nb.output(p1);
                nb.output(p2);
                nb.output(p3);
            }
        }
        nb.finish().expect("2x2 netlists are well-formed")
    }

    /// Hardware cost via the structural netlist (cached).
    #[must_use]
    pub fn hw_cost(self) -> HwCost {
        static COSTS: OnceLock<[HwCost; 3]> = OnceLock::new();
        let index = match self {
            Mul2x2Kind::Accurate => 0,
            Mul2x2Kind::ApxSoA => 1,
            Mul2x2Kind::ApxOur => 2,
        };
        COSTS.get_or_init(|| {
            let mut costs = [HwCost::ZERO; 3];
            for (i, kind) in Mul2x2Kind::ALL.iter().enumerate() {
                costs[i] = characterize(&kind.netlist(), 4096, 0x22);
            }
            costs
        })[index]
    }
}

impl fmt::Display for Mul2x2Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mul2x2Kind::Accurate => "AccMul",
            Mul2x2Kind::ApxSoA => "ApxMulSoA",
            Mul2x2Kind::ApxOur => "ApxMulOur",
        })
    }
}

impl Multiplier for Mul2x2Kind {
    fn width(&self) -> usize {
        2
    }

    fn mul(&self, a: u64, b: u64) -> u64 {
        Mul2x2Kind::mul(*self, a & 0b11, b & 0b11)
    }

    fn name(&self) -> String {
        self.to_string()
    }

    fn hw_cost(&self) -> HwCost {
        Mul2x2Kind::hw_cost(*self)
    }
}

/// An accuracy-configurable 2×2 multiplier: an approximate core plus the
/// correction stage of Fig.5, selected per multiplication by a mode bit
/// (driven by the accelerator's configuration word).
///
/// `CfgMulSoA` corrects with an **adder** (re-adding the dropped `2³`
/// term); `CfgMulOur` corrects with an **inverter-class** fix on `p0` —
/// which is why the paper reports it smaller and cooler than `CfgMulSoA`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigurableMul2x2 {
    core: Mul2x2Kind,
}

impl ConfigurableMul2x2 {
    /// Wraps an approximate core with its correction stage.
    ///
    /// # Panics
    ///
    /// Panics when `core` is [`Mul2x2Kind::Accurate`] (nothing to
    /// configure).
    #[must_use]
    pub fn new(core: Mul2x2Kind) -> Self {
        assert!(core != Mul2x2Kind::Accurate, "configurable core must be approximate");
        ConfigurableMul2x2 { core }
    }

    /// The approximate core design.
    #[must_use]
    pub fn core(&self) -> Mul2x2Kind {
        self.core
    }

    /// Multiplies in the selected mode: `accurate = true` engages the
    /// correction stage and yields the exact product.
    #[must_use]
    pub fn mul(&self, a: u64, b: u64, accurate: bool) -> u64 {
        let (a, b) = (a & 0b11, b & 0b11);
        if accurate {
            a * b
        } else {
            self.core.mul(a, b)
        }
    }

    /// A structural netlist of the configurable design: inputs
    /// `a0 a1 b0 b1 mode`, outputs `p0..p3`; `mode = 1` engages the
    /// correction stage.
    ///
    /// * `CfgMulSoA` — Fig.5's "correction: adder": detect `3×3`
    ///   (`d = a0·a1·b0·b1·mode`) and re-insert the dropped `2³` term
    ///   (`p3 = d`, `p1/p2` masked by `!d`), turning `0111` back into
    ///   `1001`.
    /// * `CfgMulOur` — Fig.5's "correction: inverter": a single gate-level
    ///   fix restoring `p0 = p3 + mode·a0·b0`.
    #[must_use]
    pub fn netlist(&self) -> Netlist {
        let mut nb = NetlistBuilder::new(self.name(), 5);
        let (a0, a1, b0, b1, mode) =
            (nb.input(0), nb.input(1), nb.input(2), nb.input(3), nb.input(4));
        match self.core {
            Mul2x2Kind::ApxSoA => {
                let p00 = nb.gate(GateKind::And2, &[a0, b0]);
                let p10 = nb.gate(GateKind::And2, &[a1, b0]);
                let p01 = nb.gate(GateKind::And2, &[a0, b1]);
                let p11 = nb.gate(GateKind::And2, &[a1, b1]);
                let p1 = nb.gate(GateKind::Or2, &[p10, p01]);
                // Fig.5's "correction: adder" — the dropped term has error
                // value 2, so detect the 3×3 row and *add 2* to the
                // approximate product through a half-adder chain on bits
                // 1..3.
                let aa = nb.gate(GateKind::And2, &[a0, a1]);
                let bb = nb.gate(GateKind::And2, &[b0, b1]);
                let all = nb.gate(GateKind::And2, &[aa, bb]);
                let d = nb.gate(GateKind::And2, &[all, mode]);
                let s1 = nb.gate(GateKind::Xor2, &[p1, d]);
                let c1 = nb.gate(GateKind::And2, &[p1, d]);
                let s2 = nb.gate(GateKind::Xor2, &[p11, c1]);
                let c2 = nb.gate(GateKind::And2, &[p11, c1]);
                nb.output(p00);
                nb.output(s1);
                nb.output(s2);
                nb.output(c2);
            }
            Mul2x2Kind::ApxOur => {
                let p10 = nb.gate(GateKind::And2, &[a1, b0]);
                let p01 = nb.gate(GateKind::And2, &[a0, b1]);
                let p11 = nb.gate(GateKind::And2, &[a1, b1]);
                let p1 = nb.gate(GateKind::Xor2, &[p10, p01]);
                let c = nb.gate(GateKind::And2, &[p10, p01]);
                let p2 = nb.gate(GateKind::Xor2, &[p11, c]);
                let p3 = nb.gate(GateKind::And2, &[p11, c]);
                // Inverter-class fix: p0 = p3 + mode·a0·b0.
                let ab = nb.gate(GateKind::And2, &[a0, b0]);
                let fix = nb.gate(GateKind::And2, &[ab, mode]);
                let p0 = nb.gate(GateKind::Or2, &[p3, fix]);
                nb.output(p0);
                nb.output(p1);
                nb.output(p2);
                nb.output(p3);
            }
            Mul2x2Kind::Accurate => unreachable!("constructor rejects accurate cores"),
        }
        nb.finish().expect("configurable 2x2 netlists are well-formed")
    }

    /// Hardware cost measured from the configurable netlist (cached).
    #[must_use]
    pub fn hw_cost(&self) -> HwCost {
        static COSTS: OnceLock<[HwCost; 2]> = OnceLock::new();
        let index = usize::from(self.core == Mul2x2Kind::ApxOur);
        COSTS.get_or_init(|| {
            [
                characterize(&ConfigurableMul2x2 { core: Mul2x2Kind::ApxSoA }.netlist(), 4096, 0x2C),
                characterize(&ConfigurableMul2x2 { core: Mul2x2Kind::ApxOur }.netlist(), 4096, 0x2C),
            ]
        })[index]
    }

    /// Instance name (`"CfgMulSoA"` / `"CfgMulOur"`).
    #[must_use]
    pub fn name(&self) -> String {
        match self.core {
            Mul2x2Kind::ApxSoA => "CfgMulSoA".to_string(),
            Mul2x2Kind::ApxOur => "CfgMulOur".to_string(),
            Mul2x2Kind::Accurate => unreachable!("constructor rejects accurate cores"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_table() {
        for a in 0u64..4 {
            for b in 0u64..4 {
                assert_eq!(Mul2x2Kind::Accurate.mul(a, b), a * b);
            }
        }
    }

    #[test]
    fn soa_only_errs_on_three_times_three() {
        for a in 0u64..4 {
            for b in 0u64..4 {
                let p = Mul2x2Kind::ApxSoA.mul(a, b);
                if a == 3 && b == 3 {
                    assert_eq!(p, 7);
                } else {
                    assert_eq!(p, a * b, "{a}x{b}");
                }
            }
        }
        assert_eq!(Mul2x2Kind::ApxSoA.error_cases(), 1);
        assert_eq!(Mul2x2Kind::ApxSoA.max_error_value(), 2);
    }

    #[test]
    fn our_design_matches_fig5_truth_table() {
        // Fig.5's ApxMulOur rows.
        let expected: [[u64; 4]; 4] = [
            [0b0000, 0b0000, 0b0000, 0b0000],
            [0b0000, 0b0000, 0b0010, 0b0010],
            [0b0000, 0b0010, 0b0100, 0b0110],
            [0b0000, 0b0010, 0b0110, 0b1001],
        ];
        for a in 0u64..4 {
            for b in 0u64..4 {
                assert_eq!(
                    Mul2x2Kind::ApxOur.mul(a, b),
                    expected[a as usize][b as usize],
                    "{a}x{b}"
                );
            }
        }
        assert_eq!(Mul2x2Kind::ApxOur.error_cases(), 3);
        assert_eq!(Mul2x2Kind::ApxOur.max_error_value(), 1);
    }

    #[test]
    fn our_design_underestimates_only() {
        for a in 0u64..4 {
            for b in 0u64..4 {
                assert!(Mul2x2Kind::ApxOur.mul(a, b) <= a * b);
            }
        }
    }

    #[test]
    fn netlists_match_behaviour() {
        for kind in Mul2x2Kind::ALL {
            let nl = kind.netlist();
            let tt = kind.truth_table();
            assert_eq!(xlac_logic::synth::verify_against(&nl, &tt), 0, "{kind}");
        }
    }

    #[test]
    fn fig5_cost_ordering() {
        let acc = Mul2x2Kind::Accurate.hw_cost();
        let soa = Mul2x2Kind::ApxSoA.hw_cost();
        let our = Mul2x2Kind::ApxOur.hw_cost();
        // Both approximate designs are cheaper than accurate; SoA (which
        // deletes the whole upper-bit column) is the cheapest.
        assert!(soa.area_ge < acc.area_ge);
        assert!(our.area_ge < acc.area_ge);
        assert!(soa.area_ge < our.area_ge);
        assert!(soa.power_nw < acc.power_nw);
        assert!(our.power_nw < acc.power_nw);
    }

    #[test]
    fn configurable_correction_restores_exactness() {
        for core in [Mul2x2Kind::ApxSoA, Mul2x2Kind::ApxOur] {
            let cfg = ConfigurableMul2x2::new(core);
            for a in 0u64..4 {
                for b in 0u64..4 {
                    assert_eq!(cfg.mul(a, b, true), a * b, "{core} accurate mode");
                    assert_eq!(cfg.mul(a, b, false), core.mul(a, b), "{core} approx mode");
                }
            }
        }
    }

    #[test]
    fn configurable_netlists_match_behaviour() {
        for core in [Mul2x2Kind::ApxSoA, Mul2x2Kind::ApxOur] {
            let cfg = ConfigurableMul2x2::new(core);
            let nl = cfg.netlist();
            for x in 0u64..32 {
                let a = x & 0b11;
                let b = (x >> 2) & 0b11;
                let mode = (x >> 4) & 1 == 1;
                assert_eq!(
                    nl.eval(x),
                    cfg.mul(a, b, mode),
                    "{} a={a} b={b} mode={mode}",
                    cfg.name()
                );
            }
        }
    }

    #[test]
    fn cfg_our_is_cheaper_than_cfg_soa() {
        // The paper's point: correction by inverter beats correction by
        // adder.
        let soa = ConfigurableMul2x2::new(Mul2x2Kind::ApxSoA).hw_cost();
        let our = ConfigurableMul2x2::new(Mul2x2Kind::ApxOur).hw_cost();
        assert!(our.area_ge < soa.area_ge);
        assert!(our.power_nw < soa.power_nw);
    }

    #[test]
    #[should_panic(expected = "must be approximate")]
    fn configurable_rejects_accurate_core() {
        let _ = ConfigurableMul2x2::new(Mul2x2Kind::Accurate);
    }

    #[test]
    fn names() {
        assert_eq!(Mul2x2Kind::ApxSoA.to_string(), "ApxMulSoA");
        assert_eq!(ConfigurableMul2x2::new(Mul2x2Kind::ApxOur).name(), "CfgMulOur");
    }
}
