//! Recursive multi-bit multipliers composed from 2×2 blocks (Fig.6).
//!
//! An `N×N` product decomposes as
//! `a·b = p_hh·2^N + (p_hl + p_lh)·2^{N/2} + p_ll` over four
//! `N/2 × N/2` sub-products; recursing down to the elementary 2×2 blocks
//! of [`crate::Mul2x2Kind`] yields the paper's multi-bit construction.
//! The partial-product additions run through configurable ripple-carry
//! adders whose low cells may be approximated ([`SumMode`]) — the second
//! approximation axis of Section 5 ("different numbers of LSBs to be
//! approximated in multi-bit approximate adders used for partial product
//! summation").
//!
//! # Example
//!
//! ```
//! use xlac_multipliers::{Multiplier, Mul2x2Kind, RecursiveMultiplier, SumMode};
//! use xlac_adders::FullAdderKind;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let exact = RecursiveMultiplier::new(8, Mul2x2Kind::Accurate, SumMode::Accurate)?;
//! assert_eq!(exact.mul(255, 255), 255 * 255);
//!
//! let approx = RecursiveMultiplier::new(
//!     8,
//!     Mul2x2Kind::ApxSoA,
//!     SumMode::ApproxLsbs { kind: FullAdderKind::Apx1, lsbs: 4 },
//! )?;
//! assert!(approx.hw_cost().area_ge < exact.hw_cost().area_ge);
//! # Ok(())
//! # }
//! ```

use crate::mul2x2::Mul2x2Kind;
use crate::{Multiplier, MultiplierX64};
use xlac_adders::{Adder, FullAdderKind, RippleCarryAdder};
use xlac_core::bits;
use xlac_core::characterization::HwCost;
use xlac_core::error::{Result, XlacError};

/// How partial products are summed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumMode {
    /// Exact ripple-carry summation.
    Accurate,
    /// Each summation adder approximates its `lsbs` least-significant
    /// cells with `kind` (clamped to the adder width).
    ApproxLsbs {
        /// Approximate full-adder cell for the low bits.
        kind: FullAdderKind,
        /// How many LSB cells to approximate per adder instance.
        lsbs: usize,
    },
}

/// An `N×N` multiplier recursively composed from 2×2 blocks.
#[derive(Debug, Clone)]
pub struct RecursiveMultiplier {
    width: usize,
    block: Mul2x2Kind,
    sum: SumMode,
    /// Pre-built summation adders for widths 4..=2·width, index `log2(w) - 2`.
    adders: Vec<RippleCarryAdder>,
}

impl RecursiveMultiplier {
    /// Creates an `width × width` multiplier (width a power of two in
    /// `2..=32`).
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidWidth`] for non-power-of-two or
    /// out-of-range widths.
    pub fn new(width: usize, block: Mul2x2Kind, sum: SumMode) -> Result<Self> {
        if !(2..=32).contains(&width) || !width.is_power_of_two() {
            return Err(XlacError::InvalidWidth { width, max: 32 });
        }
        let mut adders = Vec::new();
        let mut w = 4usize;
        while w <= 2 * width {
            adders.push(Self::build_adder(w, sum)?);
            w *= 2;
        }
        Ok(RecursiveMultiplier { width, block, sum, adders })
    }

    fn build_adder(width: usize, sum: SumMode) -> Result<RippleCarryAdder> {
        match sum {
            SumMode::Accurate => Ok(RippleCarryAdder::accurate(width)),
            SumMode::ApproxLsbs { kind, lsbs } => {
                RippleCarryAdder::with_approx_lsbs(width, kind, lsbs.min(width))
            }
        }
    }

    /// The elementary block design.
    #[must_use]
    pub fn block(&self) -> Mul2x2Kind {
        self.block
    }

    /// The partial-product summation mode.
    #[must_use]
    pub fn sum_mode(&self) -> SumMode {
        self.sum
    }

    fn adder(&self, width: usize) -> &RippleCarryAdder {
        // Levels are the powers of two 4..=2·width; index by log2 so the
        // hot recursion avoids a hash probe per summation.
        &self.adders[width.trailing_zeros() as usize - 2]
    }

    fn mul_rec(&self, w: usize, a: u64, b: u64) -> u64 {
        if w == 2 {
            return self.block.mul(a & 0b11, b & 0b11);
        }
        let h = w / 2;
        let (al, ah) = (bits::truncate(a, h), bits::field(a, h, h));
        let (bl, bh) = (bits::truncate(b, h), bits::field(b, h, h));
        let p_ll = self.mul_rec(h, al, bl);
        let p_lh = self.mul_rec(h, al, bh);
        let p_hl = self.mul_rec(h, ah, bl);
        let p_hh = self.mul_rec(h, ah, bh);
        // p_ll and p_hh occupy disjoint bit ranges: concatenation, no adder.
        let outer = p_ll | (p_hh << w);
        // One w-bit add for the two middle products…
        let mid = self.adder(w).add(p_lh, p_hl);
        // …and one 2w-bit add to merge them in at offset h.
        self.adder(2 * w).add(outer, mid << h)
    }

    /// Bit-sliced mirror of `mul_rec`: identical recursion, identical OR
    /// concatenation (including the stray-carry plane overlap at plane
    /// `w`), identical adder truncation — writes `2w + 1` planes into
    /// `out`. Operands must hold exactly `w` planes (the public entry
    /// normalizes); all scratch lives on the stack, so a full product
    /// evaluation performs no heap allocation.
    fn mul_rec_x64_into(&self, w: usize, a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert_eq!(a.len(), w);
        debug_assert_eq!(b.len(), w);
        debug_assert_eq!(out.len(), 2 * w + 1);
        if w == 2 {
            let p = self.block.mul_x64(a[0], a[1], b[0], b[1]);
            out[..4].copy_from_slice(&p);
            out[4] = 0;
            return;
        }
        if w == 4 {
            return self.mul4_x64_into(a, b, out);
        }
        if w == 8 {
            return self.mul8_x64_into(a, b, out);
        }
        let h = w / 2;
        let (al, ah) = a.split_at(h);
        let (bl, bh) = b.split_at(h);
        // Sub-products carry 2h + 1 = w + 1 ≤ 33 planes (width ≤ 32).
        let mut p_ll = [0u64; 33];
        let mut p_lh = [0u64; 33];
        let mut p_hl = [0u64; 33];
        let mut p_hh = [0u64; 33];
        self.mul_rec_x64_into(h, al, bl, &mut p_ll[..w + 1]);
        self.mul_rec_x64_into(h, al, bh, &mut p_lh[..w + 1]);
        self.mul_rec_x64_into(h, ah, bl, &mut p_hl[..w + 1]);
        self.mul_rec_x64_into(h, ah, bh, &mut p_hh[..w + 1]);
        // outer = p_ll | (p_hh << w): the stray-carry plane of p_ll (index
        // w) overlaps plane 0 of the shifted p_hh as a bitwise OR, exactly
        // like the scalar concatenation.
        let mut outer = [0u64; 65];
        outer[..=w].copy_from_slice(&p_ll[..=w]);
        for i in 0..=w {
            outer[w + i] |= p_hh[i];
        }
        // The w-bit adder truncates its operands to w planes (dropping the
        // sub-products' stray carries), as does the scalar datapath.
        let mut mid = [0u64; 33];
        self.adder(w).add_x64_into(&p_lh[..w], &p_hl[..w], &mut mid[..w + 1]);
        let mut mid_shifted = [0u64; 64];
        mid_shifted[h..h + w + 1].copy_from_slice(&mid[..w + 1]);
        self.adder(2 * w).add_x64_into(&outer[..2 * w], &mid_shifted[..2 * w], out);
    }

    /// `w = 4` level of `mul_rec_x64_into` with exact-size stack buffers:
    /// the sub-products are 2×2 blocks directly, so the whole level is
    /// straight-line code. Same structure, same stray-carry overlap, same
    /// adder truncation as the generic path.
    fn mul4_x64_into(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert_eq!(out.len(), 9);
        let p_ll = self.block.mul_x64(a[0], a[1], b[0], b[1]);
        let p_lh = self.block.mul_x64(a[0], a[1], b[2], b[3]);
        let p_hl = self.block.mul_x64(a[2], a[3], b[0], b[1]);
        let p_hh = self.block.mul_x64(a[2], a[3], b[2], b[3]);
        // The 2×2 base never produces a stray plane-4 carry, so
        // outer = p_ll | (p_hh << 4) is a plain concatenation here.
        let mut outer = [0u64; 8];
        outer[..4].copy_from_slice(&p_ll);
        outer[4..].copy_from_slice(&p_hh);
        let mut mid = [0u64; 5];
        self.adder(4).add_x64_into(&p_lh, &p_hl, &mut mid);
        let mut mid_shifted = [0u64; 8];
        mid_shifted[2..7].copy_from_slice(&mid);
        self.adder(8).add_x64_into(&outer, &mid_shifted, out);
    }

    /// `w = 8` level of `mul_rec_x64_into` with exact-size stack buffers.
    fn mul8_x64_into(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert_eq!(out.len(), 17);
        let (al, ah) = a.split_at(4);
        let (bl, bh) = b.split_at(4);
        let mut p_ll = [0u64; 9];
        let mut p_lh = [0u64; 9];
        let mut p_hl = [0u64; 9];
        let mut p_hh = [0u64; 9];
        self.mul4_x64_into(al, bl, &mut p_ll);
        self.mul4_x64_into(al, bh, &mut p_lh);
        self.mul4_x64_into(ah, bl, &mut p_hl);
        self.mul4_x64_into(ah, bh, &mut p_hh);
        // outer = p_ll | (p_hh << 8), stray plane 8 of p_ll overlapping
        // plane 0 of the shifted p_hh — exactly the generic path.
        let mut outer = [0u64; 17];
        outer[..9].copy_from_slice(&p_ll);
        for i in 0..9 {
            outer[8 + i] |= p_hh[i];
        }
        let mut mid = [0u64; 9];
        self.adder(8).add_x64_into(&p_lh[..8], &p_hl[..8], &mut mid);
        let mut mid_shifted = [0u64; 16];
        mid_shifted[4..13].copy_from_slice(&mid);
        self.adder(16).add_x64_into(&outer[..16], &mid_shifted, out);
    }
}

impl MultiplierX64 for RecursiveMultiplier {
    fn mul_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let w = self.width;
        // Normalize to exactly `w` operand planes: missing planes read as
        // zero, extra planes are ignored (truncate-on-input semantics).
        let mut na = [0u64; 32];
        let mut nb = [0u64; 32];
        na[..w.min(a.len())].copy_from_slice(&a[..w.min(a.len())]);
        nb[..w.min(b.len())].copy_from_slice(&b[..w.min(b.len())]);
        let mut product = [0u64; 65];
        self.mul_rec_x64_into(w, &na[..w], &nb[..w], &mut product[..2 * w + 1]);
        // The stray top-level carry plane is dropped, as in `mul`.
        product[..2 * w].to_vec()
    }
}

impl Multiplier for RecursiveMultiplier {
    fn width(&self) -> usize {
        self.width
    }

    fn mul(&self, a: u64, b: u64) -> u64 {
        let a = bits::truncate(a, self.width);
        let b = bits::truncate(b, self.width);
        // The 2w-bit top-level add can produce a stray carry bit from
        // approximate cells; the true product always fits in 2w bits.
        bits::truncate(self.mul_rec(self.width, a, b), 2 * self.width)
    }

    fn name(&self) -> String {
        match self.sum {
            SumMode::Accurate => format!("RecMul(N={},{})", self.width, self.block),
            SumMode::ApproxLsbs { kind, lsbs } => {
                format!("RecMul(N={},{},{lsbs}x{kind})", self.width, self.block)
            }
        }
    }

    fn hw_cost(&self) -> HwCost {
        fn cost_rec(m: &RecursiveMultiplier, w: usize) -> HwCost {
            if w == 2 {
                return m.block.hw_cost();
            }
            let sub = cost_rec(m, w / 2);
            // Four sub-multipliers work in parallel; the two adders chain
            // after them.
            let subs = sub.parallel(sub).parallel(sub).parallel(sub);
            subs + m.adder(w).hw_cost() + m.adder(2 * w).hw_cost()
        }
        cost_rec(self, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlac_core::metrics::exhaustive_binary;

    fn exact_mul(width: usize) -> RecursiveMultiplier {
        RecursiveMultiplier::new(width, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap()
    }

    #[test]
    fn accurate_4x4_is_exhaustively_exact() {
        let m = exact_mul(4);
        for a in 0u64..16 {
            for b in 0u64..16 {
                assert_eq!(m.mul(a, b), a * b, "{a}x{b}");
            }
        }
    }

    #[test]
    fn accurate_8x8_is_exhaustively_exact() {
        let m = exact_mul(8);
        for a in 0u64..256 {
            for b in 0u64..256 {
                assert_eq!(m.mul(a, b), a * b, "{a}x{b}");
            }
        }
    }

    #[test]
    fn accurate_16x16_spot_checks() {
        let m = exact_mul(16);
        for (a, b) in [(65535u64, 65535u64), (12345, 54321), (256, 255), (0, 99)] {
            assert_eq!(m.mul(a, b), a * b);
        }
    }

    #[test]
    fn width_validation() {
        assert!(RecursiveMultiplier::new(3, Mul2x2Kind::Accurate, SumMode::Accurate).is_err());
        assert!(RecursiveMultiplier::new(0, Mul2x2Kind::Accurate, SumMode::Accurate).is_err());
        assert!(RecursiveMultiplier::new(64, Mul2x2Kind::Accurate, SumMode::Accurate).is_err());
        assert!(RecursiveMultiplier::new(2, Mul2x2Kind::Accurate, SumMode::Accurate).is_ok());
    }

    #[test]
    fn width_2_is_the_block_itself() {
        let m = RecursiveMultiplier::new(2, Mul2x2Kind::ApxSoA, SumMode::Accurate).unwrap();
        assert_eq!(m.mul(3, 3), 7);
    }

    #[test]
    fn soa_blocks_err_only_where_a_3x3_digit_pair_meets() {
        // With accurate summation, errors originate purely in 2x2 blocks
        // multiplying digit pair (3, 3).
        let m = RecursiveMultiplier::new(4, Mul2x2Kind::ApxSoA, SumMode::Accurate).unwrap();
        for a in 0u64..16 {
            for b in 0u64..16 {
                let has_33 =
                    (a & 3 == 3 || a >> 2 == 3) && (b & 3 == 3 || b >> 2 == 3);
                if !has_33 {
                    assert_eq!(m.mul(a, b), a * b, "{a}x{b} should be exact");
                }
            }
        }
    }

    #[test]
    fn approximate_multipliers_underestimate_on_average() {
        // Both 2x2 designs only lose product mass (3x3→7, LSB dropped), so
        // the mean signed error must be negative.
        for block in [Mul2x2Kind::ApxSoA, Mul2x2Kind::ApxOur] {
            let m = RecursiveMultiplier::new(8, block, SumMode::Accurate).unwrap();
            let stats = exhaustive_binary(8, 8, |a, b| a * b, |a, b| m.mul(a, b));
            assert!(stats.mean_signed_error < 0.0, "{block}");
            assert!(stats.error_rate > 0.0 && stats.error_rate < 1.0, "{block}");
        }
    }

    #[test]
    fn our_block_bounds_relative_error_tighter_than_soa_at_block_level() {
        // Max error value: SoA = 2 per block event, Our = 1 per block event.
        let soa = RecursiveMultiplier::new(4, Mul2x2Kind::ApxSoA, SumMode::Accurate).unwrap();
        let our = RecursiveMultiplier::new(4, Mul2x2Kind::ApxOur, SumMode::Accurate).unwrap();
        let s_soa = exhaustive_binary(4, 4, |a, b| a * b, |a, b| soa.mul(a, b));
        let s_our = exhaustive_binary(4, 4, |a, b| a * b, |a, b| our.mul(a, b));
        // The worst single-block error is scaled by the block position
        // weight; Our's per-block bound of 1 must give a smaller worst case.
        assert!(s_our.max_error_distance < s_soa.max_error_distance);
    }

    #[test]
    fn approximate_summation_degrades_quality_monotonically_in_lsbs() {
        let mut last_rate = -1.0f64;
        for lsbs in [0usize, 2, 4, 8] {
            let m = RecursiveMultiplier::new(
                8,
                Mul2x2Kind::Accurate,
                SumMode::ApproxLsbs { kind: FullAdderKind::Apx3, lsbs },
            )
            .unwrap();
            let stats = exhaustive_binary(8, 8, |a, b| a * b, |a, b| m.mul(a, b));
            assert!(
                stats.error_rate >= last_rate - 1e-12,
                "error rate should not shrink as more LSBs are approximated"
            );
            last_rate = stats.error_rate;
        }
    }

    #[test]
    fn cost_grows_with_width() {
        let costs: Vec<f64> =
            [2usize, 4, 8, 16].iter().map(|&w| exact_mul(w).hw_cost().area_ge).collect();
        for pair in costs.windows(2) {
            assert!(pair[1] > pair[0] * 3.0, "area should roughly quadruple: {costs:?}");
        }
    }

    #[test]
    fn approximate_configurations_are_cheaper() {
        let exact = exact_mul(8).hw_cost();
        let cheap = RecursiveMultiplier::new(
            8,
            Mul2x2Kind::ApxSoA,
            SumMode::ApproxLsbs { kind: FullAdderKind::Apx5, lsbs: 4 },
        )
        .unwrap()
        .hw_cost();
        assert!(cheap.area_ge < exact.area_ge);
        assert!(cheap.power_nw < exact.power_nw);
    }

    #[test]
    fn names_describe_configuration() {
        let m = RecursiveMultiplier::new(
            8,
            Mul2x2Kind::ApxOur,
            SumMode::ApproxLsbs { kind: FullAdderKind::Apx2, lsbs: 3 },
        )
        .unwrap();
        assert_eq!(m.name(), "RecMul(N=8,ApxMulOur,3xApxFA2)");
    }

    #[test]
    fn product_always_fits_in_double_width() {
        let m = RecursiveMultiplier::new(
            8,
            Mul2x2Kind::ApxOur,
            SumMode::ApproxLsbs { kind: FullAdderKind::Apx5, lsbs: 8 },
        )
        .unwrap();
        for a in (0u64..256).step_by(3) {
            for b in (0u64..256).step_by(5) {
                assert!(m.mul(a, b) < 1 << 16);
            }
        }
    }
}
