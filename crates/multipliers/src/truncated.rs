//! Truncated multipliers — the partial-product-elimination family.
//!
//! The multi-bit multipliers of [`crate::multi_bit`] approximate the
//! *blocks* and the *summation*; the third classic axis (Kulkarni's and
//! Sullivan's truncation line, both cited by the paper) removes entire
//! low-order **partial-product columns**: every `a_i·b_j` with
//! `i + j < k` is never generated, saving the AND gates and the reduction
//! cells of the `k` cheapest columns. An optional constant-compensation
//! term re-centres the error distribution (Sullivan & Swartzlander's
//! truncated error correction).
//!
//! # Example
//!
//! ```
//! use xlac_multipliers::{Multiplier, TruncatedMultiplier};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let exact = TruncatedMultiplier::new(8, 0, false)?;
//! assert_eq!(exact.mul(200, 99), 200 * 99);
//!
//! let trunc = TruncatedMultiplier::new(8, 6, true)?;
//! let p = trunc.mul(200, 99);
//! assert!(p.abs_diff(200 * 99) < 1 << 7);
//! # Ok(())
//! # }
//! ```

use crate::{Multiplier, MultiplierX64};
use xlac_adders::FullAdderKind;
use xlac_core::bits;
use xlac_core::characterization::HwCost;
use xlac_core::error::{Result, XlacError};

/// An `N×N` multiplier with the lowest `dropped` partial-product columns
/// eliminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedMultiplier {
    width: usize,
    dropped: usize,
    compensated: bool,
}

impl TruncatedMultiplier {
    /// Creates a truncated multiplier. `dropped` low columns are never
    /// generated; when `compensated` is set, the expected value of the
    /// dropped mass is added back as a constant.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidWidth`] for widths outside `1..=32` or
    /// [`XlacError::InvalidConfiguration`] when `dropped` reaches the full
    /// `2·width` column count.
    pub fn new(width: usize, dropped: usize, compensated: bool) -> Result<Self> {
        if !(1..=32).contains(&width) {
            return Err(XlacError::InvalidWidth { width, max: 32 });
        }
        if dropped >= 2 * width {
            return Err(XlacError::InvalidConfiguration(format!(
                "dropping {dropped} columns removes the whole {}-column product",
                2 * width
            )));
        }
        Ok(TruncatedMultiplier { width, dropped, compensated })
    }

    /// Number of eliminated columns.
    #[must_use]
    pub fn dropped_columns(&self) -> usize {
        self.dropped
    }

    /// Whether constant compensation is enabled.
    #[must_use]
    pub fn is_compensated(&self) -> bool {
        self.compensated
    }

    /// The constant compensation value: the expected dropped mass under
    /// uniform operands. Column `c` (< N) holds `c + 1` partial products,
    /// each 1 with probability ¼, so
    /// `E = Σ_{c<k} (c+1) · ¼ · 2^c`, rounded to the nearest integer.
    #[must_use]
    pub fn compensation(&self) -> u64 {
        if !self.compensated {
            return 0;
        }
        let mut expected = 0.0f64;
        for c in 0..self.dropped {
            let products = (c + 1).min(self.width).min(2 * self.width - 1 - c) as f64;
            expected += products * 0.25 * (1u64 << c) as f64;
        }
        expected.round() as u64
    }

    /// Number of partial products actually generated (the saved AND-gate
    /// count is `N² −` this).
    #[must_use]
    pub fn generated_partial_products(&self) -> usize {
        let n = self.width;
        (0..n)
            .flat_map(|i| (0..n).map(move |j| i + j))
            .filter(|&col| col >= self.dropped)
            .count()
    }
}

impl MultiplierX64 for TruncatedMultiplier {
    /// Bit-sliced truncated product: the surviving partial-product planes
    /// plus the compensation constant are summed exactly per lane, modulo
    /// `2^{2w}` — the same arithmetic as the scalar `mul`, which performs
    /// an exact sum of the surviving columns and truncates.
    fn mul_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let w = self.width;
        let cols = 2 * w;
        let plane = |p: &[u64], i: usize| p.get(i).copied().unwrap_or(0);
        let comp = self.compensation();
        let mut acc: Vec<u64> =
            (0..cols).map(|i| if (comp >> i) & 1 == 1 { u64::MAX } else { 0 }).collect();
        for i in 0..w {
            let ai = plane(a, i);
            if ai == 0 {
                continue;
            }
            for j in 0..w {
                if i + j < self.dropped {
                    continue;
                }
                // Ripple the single partial-product plane into the
                // accumulator at weight i + j (exact add, wraps at 2w).
                let mut carry = ai & plane(b, j);
                let mut idx = i + j;
                while carry != 0 && idx < cols {
                    let s = acc[idx] ^ carry;
                    carry &= acc[idx];
                    acc[idx] = s;
                    idx += 1;
                }
            }
        }
        acc
    }
}

impl Multiplier for TruncatedMultiplier {
    fn width(&self) -> usize {
        self.width
    }

    fn mul(&self, a: u64, b: u64) -> u64 {
        let a = bits::truncate(a, self.width);
        let b = bits::truncate(b, self.width);
        let mut acc = 0u64;
        for i in 0..self.width {
            if bits::bit(a, i) == 0 {
                continue;
            }
            for j in 0..self.width {
                if bits::bit(b, j) == 1 && i + j >= self.dropped {
                    acc += 1u64 << (i + j);
                }
            }
        }
        // At width 32 the retained mass spans all 64 bits; the wrapping
        // add is exactly the mod-2^{2w} truncation semantics.
        bits::truncate(acc.wrapping_add(self.compensation()), 2 * self.width)
    }

    fn name(&self) -> String {
        let suffix = if self.compensated { "+comp" } else { "" };
        format!("TruncMul(N={},D={}{})", self.width, self.dropped, suffix)
    }

    fn hw_cost(&self) -> HwCost {
        // Generated partial products cost one AND each; the reduction tree
        // scales with the generated count; compensation is wiring.
        let and_gate = HwCost { area_ge: 1.33, power_nw: 60.0, delay: 1.5 };
        let generated = self.generated_partial_products() as f64;
        let partials = and_gate * generated;
        // Reduction cells ≈ (generated − 2N) FAs; final CPA over 2N bits.
        let fa = FullAdderKind::Accurate.hw_cost();
        let reduction = fa * (generated - (2 * self.width) as f64).max(0.0);
        let cpa = fa * (2 * self.width) as f64;
        let mut cost = partials + reduction + cpa;
        cost.delay = fa.delay * ((generated.max(1.0)).log(1.5) + 2.0);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlac_core::metrics::exhaustive_binary;

    #[test]
    fn zero_truncation_is_exact() {
        let m = TruncatedMultiplier::new(8, 0, false).unwrap();
        for a in (0u64..256).step_by(7) {
            for b in (0u64..256).step_by(11) {
                assert_eq!(m.mul(a, b), a * b);
            }
        }
    }

    #[test]
    fn truncation_only_underestimates_without_compensation() {
        let m = TruncatedMultiplier::new(8, 5, false).unwrap();
        for a in (0u64..256).step_by(3) {
            for b in (0u64..256).step_by(5) {
                assert!(m.mul(a, b) <= a * b);
            }
        }
    }

    #[test]
    fn dropped_mass_is_bounded_by_column_weights() {
        // Dropping k columns can lose at most Σ_{c<k} (c+1)·2^c.
        let k = 6usize;
        let m = TruncatedMultiplier::new(8, k, false).unwrap();
        let bound: u64 = (0..k).map(|c| (c as u64 + 1) << c).sum();
        let stats = exhaustive_binary(8, 8, |a, b| a * b, |a, b| m.mul(a, b));
        assert!(stats.max_error_distance <= bound);
        assert!(stats.max_error_distance > 0);
    }

    #[test]
    fn compensation_reduces_bias_and_med() {
        let raw = TruncatedMultiplier::new(8, 6, false).unwrap();
        let comp = TruncatedMultiplier::new(8, 6, true).unwrap();
        let s_raw = exhaustive_binary(8, 8, |a, b| a * b, |a, b| raw.mul(a, b));
        let s_comp = exhaustive_binary(8, 8, |a, b| a * b, |a, b| comp.mul(a, b));
        assert!(
            s_comp.mean_signed_error.abs() < s_raw.mean_signed_error.abs(),
            "compensation must de-bias: {} vs {}",
            s_comp.mean_signed_error,
            s_raw.mean_signed_error
        );
        assert!(s_comp.mean_error_distance < s_raw.mean_error_distance);
    }

    #[test]
    fn compensation_value_matches_expectation() {
        let m = TruncatedMultiplier::new(8, 4, true).unwrap();
        // E = ¼·(1·1 + 2·2 + 3·4 + 4·8) = ¼·49 = 12.25 → 12.
        assert_eq!(m.compensation(), 12);
        let exact = TruncatedMultiplier::new(8, 4, false).unwrap();
        assert_eq!(exact.compensation(), 0);
    }

    #[test]
    fn cost_falls_with_truncation() {
        let mut last = f64::INFINITY;
        for k in [0usize, 2, 4, 6, 8] {
            let area = TruncatedMultiplier::new(8, k, false).unwrap().hw_cost().area_ge;
            assert!(area < last, "dropping more columns must shrink the design");
            last = area;
        }
    }

    #[test]
    fn generated_count_is_consistent() {
        let m = TruncatedMultiplier::new(4, 0, false).unwrap();
        assert_eq!(m.generated_partial_products(), 16);
        let m = TruncatedMultiplier::new(4, 2, false).unwrap();
        // Columns 0 (1 pp) and 1 (2 pps) dropped: 16 - 3.
        assert_eq!(m.generated_partial_products(), 13);
    }

    #[test]
    fn validation() {
        assert!(TruncatedMultiplier::new(0, 0, false).is_err());
        assert!(TruncatedMultiplier::new(33, 0, false).is_err());
        assert!(TruncatedMultiplier::new(8, 16, false).is_err());
        // Widths 17..=32 are now valid (the error calculus certifies
        // them); spot-check exactness at the 32-bit ceiling.
        let wide = TruncatedMultiplier::new(32, 0, false).unwrap();
        for (a, b) in [(u32::MAX as u64, u32::MAX as u64), (0xDEAD_BEEF, 0x1234_5678)] {
            assert_eq!(wide.mul(a, b), a.wrapping_mul(b));
        }
    }

    #[test]
    fn names() {
        assert_eq!(TruncatedMultiplier::new(8, 4, true).unwrap().name(), "TruncMul(N=8,D=4+comp)");
        assert_eq!(TruncatedMultiplier::new(8, 4, false).unwrap().name(), "TruncMul(N=8,D=4)");
    }
}
