//! Analytical error models for GeAr configurations.
//!
//! The paper's point (Section 4.2, Table IV): a designer — or a compiler
//! emitting approximate `add` instructions — must be able to rank GeAr
//! configurations *without* exhaustive simulation. This module provides
//! three estimators of `P[error]` under uniformly random operands, plus an
//! exhaustive ground truth for small widths:
//!
//! * [`GearErrorModel::exact`] — a transfer-matrix (automaton) evaluation.
//!   Per bit position the operand pair is *generate* (`a=b=1`, probability
//!   ¼), *propagate* (`a≠b`, ½) or *kill* (`a=b=0`, ¼). Sub-adder `s` errs
//!   exactly when its `P` prediction bits are all in propagate mode and the
//!   carry into them is 1; scanning positions with the two-bit state
//!   (current carry, length of the trailing propagate run) computes the
//!   union probability in closed form.
//! * [`GearErrorModel::inclusion_exclusion`] — the paper's formula:
//!   `P[∪ Z_i] = Σ P[Z_j] − Σ P[Z_j ∩ Z_k] + …` with every joint
//!   probability evaluated exactly by a constrained forward pass. Agrees
//!   with `exact` to floating-point precision (the two are different
//!   factorizations of the same sum).
//! * [`GearErrorModel::union_bound`] — the first-order truncation
//!   `min(1, Σ P[Z_j])`, useful as a conservative, `O(k)` screen.
//! * [`GearErrorModel::monte_carlo`] / [`GearErrorModel::exhaustive`] —
//!   simulation ground truths.
//!
//! # Example
//!
//! ```
//! use xlac_adders::{GeArAdder, GearErrorModel};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let gear = GeArAdder::new(11, 1, 9)?; // Table IV's max-accuracy pick
//! let model = GearErrorModel::for_adder(&gear);
//! let accuracy = (1.0 - model.exact()) * 100.0;
//! assert!(accuracy > 99.0);
//! # Ok(())
//! # }
//! ```

use crate::gear::GeArAdder;
use xlac_core::rng::{DefaultRng, Rng};
use xlac_core::bits;

/// Analytical error model for a GeAr `(N, R, P)` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GearErrorModel {
    n: usize,
    r: usize,
    p: usize,
}

impl GearErrorModel {
    /// Builds the model for an existing adder.
    #[must_use]
    pub fn for_adder(adder: &GeArAdder) -> Self {
        GearErrorModel { n: adder.n(), r: adder.r(), p: adder.p() }
    }

    /// Number of sub-adders.
    #[must_use]
    fn k(&self) -> usize {
        (self.n - self.r - self.p) / self.r + 1
    }

    /// Error-event checkpoints: for sub-adder `s >= 1` (0-indexed) the
    /// event is "carry into bit `s·R` is 1 and bits `[s·R, s·R+P)` all
    /// propagate".
    fn window_starts(&self) -> Vec<usize> {
        (1..self.k()).map(|s| s * self.r).collect()
    }

    /// Exact `P[error]` under uniform random operands, via a forward scan
    /// over bit positions with state `(carry, trailing propagate-run)`.
    #[must_use]
    pub fn exact(&self) -> f64 {
        let p = self.p;
        let starts = self.window_starts();
        if starts.is_empty() {
            return 0.0;
        }

        // State: (carry c ∈ {0,1}, run r ∈ 0..=p). `run` counts trailing
        // propagate symbols, capped at p. Mass not yet absorbed by an error
        // event.
        let states = 2 * (p + 1);
        let idx = |c: usize, run: usize| c * (p + 1) + run;
        let mut mass = vec![0.0f64; states];
        mass[idx(0, 0)] = 1.0;

        // Positions where a window *ends*: start + p - 1 (for p >= 1).
        // For p == 0 the check happens *before* consuming the start
        // position: carry == 1 there is an immediate error.
        let mut survive = 0.0;
        for t in 0..self.n {
            if p == 0 && starts.contains(&t) {
                // Absorb all carry=1 mass as error.
                for run in 0..=p {
                    mass[idx(1, run)] = 0.0;
                }
            }
            let mut next = vec![0.0f64; states];
            for c in 0..2usize {
                for run in 0..=p {
                    let m = mass[idx(c, run)];
                    if m == 0.0 {
                        continue;
                    }
                    // generate (¼): carry := 1, run := 0
                    next[idx(1, 0)] += 0.25 * m;
                    // kill (¼): carry := 0, run := 0
                    next[idx(0, 0)] += 0.25 * m;
                    // propagate (½): carry unchanged, run += 1 (capped)
                    next[idx(c, (run + 1).min(p))] += 0.5 * m;
                }
            }
            mass = next;
            if p > 0 {
                // Did a window just complete at position t?
                if starts.iter().any(|&w| t + 1 == w + p && t + 1 >= p) {
                    // Error: run == p (window all propagate) and carry == 1.
                    // Note: carry is frozen across propagate symbols, so the
                    // current carry equals the carry at the window start.
                    mass[idx(1, p)] = 0.0;
                }
            }
        }
        survive += mass.iter().sum::<f64>();
        1.0 - survive
    }

    /// The paper's inclusion–exclusion expansion over error-generating
    /// events, with exact joint probabilities.
    ///
    /// Exponential in the number of sub-adders; guarded to `k ≤ 20`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has more than 21 sub-adders.
    #[must_use]
    pub fn inclusion_exclusion(&self) -> f64 {
        let starts = self.window_starts();
        let k1 = starts.len();
        assert!(k1 <= 20, "inclusion-exclusion over {k1} events is infeasible");
        let mut total = 0.0f64;
        for subset in 1u64..(1 << k1) {
            let chosen: Vec<usize> = (0..k1).filter(|i| (subset >> i) & 1 == 1).map(|i| starts[i]).collect();
            let sign = if subset.count_ones() % 2 == 1 { 1.0 } else { -1.0 };
            total += sign * self.joint_probability(&chosen);
        }
        total
    }

    /// First-order union bound `min(1, Σ P[Z_j])`.
    #[must_use]
    pub fn union_bound(&self) -> f64 {
        let sum: f64 = self.window_starts().iter().map(|&w| self.joint_probability(&[w])).sum();
        sum.min(1.0)
    }

    /// Joint probability that **all** the events with the given window
    /// starts occur: each window `[w, w+P)` is all-propagate and the carry
    /// into `w` is 1. Exact, via a constrained forward pass.
    fn joint_probability(&self, windows: &[usize]) -> f64 {
        let p = self.p;
        // carry-state distribution: prob[c] with forced transitions inside
        // required windows.
        let mut prob = [1.0f64, 0.0f64]; // carry 0 at position 0
        let in_window = |t: usize| windows.iter().any(|&w| t >= w && t < w + p);
        let at_start = |t: usize| windows.contains(&t);
        let mut scale = 1.0f64;

        for t in 0..self.n {
            if at_start(t) {
                // Require carry == 1 entering this window.
                scale *= prob[1];
                if scale == 0.0 {
                    return 0.0;
                }
                prob = [0.0, 1.0];
            }
            if in_window(t) {
                // Symbol forced to propagate: probability ½, carry frozen.
                scale *= 0.5;
            } else {
                // Free symbol: ¼ generate, ¼ kill, ½ propagate.
                let c0 = prob[0];
                let c1 = prob[1];
                prob = [0.25 * (c0 + c1) + 0.5 * c0, 0.25 * (c0 + c1) + 0.5 * c1];
            }
        }
        // For p == 0 a window start with carry==1 is the entire event; the
        // loop above handles it through `at_start` alone.
        scale
    }

    /// First-order analytical **mean error distance**: each sub-adder's
    /// error event misses a carry worth `2^{s·R+P}`, so
    /// `E[|error|] ≈ Σ_s P[Z_s] · 2^{s·R+P}`.
    ///
    /// Exact up to (a) joint error events and (b) result-section wrap
    /// truncation — both second-order effects for the low-error
    /// configurations designers actually pick. Compare against
    /// [`GearErrorModel::mean_error_distance_monte_carlo`] when precision
    /// matters.
    #[must_use]
    pub fn mean_error_distance(&self) -> f64 {
        self.window_starts()
            .iter()
            .map(|&w| self.joint_probability(&[w]) * (1u64 << (w + self.p)) as f64)
            .sum()
    }

    /// Monte-Carlo mean error distance over `samples` random operand
    /// pairs.
    #[must_use]
    pub fn mean_error_distance_monte_carlo(&self, samples: u64, seed: u64) -> f64 {
        let adder = GeArAdder::new(self.n, self.r, self.p).expect("model holds a valid config");
        let mut rng = DefaultRng::seed_from_u64(seed);
        let m = bits::mask(self.n);
        let mut total = 0.0f64;
        for _ in 0..samples {
            let a = rng.gen::<u64>() & m;
            let b = rng.gen::<u64>() & m;
            total += adder.add(a, b).value.abs_diff(a + b) as f64;
        }
        total / samples as f64
    }

    /// Monte-Carlo estimate over `samples` uniformly random operand pairs,
    /// simulating the actual adder.
    #[must_use]
    pub fn monte_carlo(&self, samples: u64, seed: u64) -> f64 {
        let adder = GeArAdder::new(self.n, self.r, self.p).expect("model holds a valid config");
        let mut rng = DefaultRng::seed_from_u64(seed);
        let m = bits::mask(self.n);
        let mut errors = 0u64;
        for _ in 0..samples {
            let a = rng.gen::<u64>() & m;
            let b = rng.gen::<u64>() & m;
            if adder.add(a, b).value != a + b {
                errors += 1;
            }
        }
        errors as f64 / samples as f64
    }

    /// Exhaustive error rate by simulating every operand pair. Only
    /// feasible for `2N ≤ 26`.
    ///
    /// # Panics
    ///
    /// Panics if `2N > 26`.
    #[must_use]
    pub fn exhaustive(&self) -> f64 {
        assert!(2 * self.n <= 26, "exhaustive space 2^{} too large", 2 * self.n);
        let adder = GeArAdder::new(self.n, self.r, self.p).expect("model holds a valid config");
        let size = 1u64 << self.n;
        let mut errors = 0u64;
        for a in 0..size {
            for b in 0..size {
                if adder.add(a, b).value != a + b {
                    errors += 1;
                }
            }
        }
        errors as f64 / (size * size) as f64
    }

    /// Accuracy percentage `(1 − P[error]) · 100` from the exact model —
    /// the Table IV figure.
    #[must_use]
    pub fn accuracy_percent(&self) -> f64 {
        (1.0 - self.exact()) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize, r: usize, p: usize) -> GearErrorModel {
        GearErrorModel::for_adder(&GeArAdder::new(n, r, p).unwrap())
    }

    #[test]
    fn single_sub_adder_never_errs() {
        let m = model(8, 4, 4); // L = N → k = 1
        assert_eq!(m.exact(), 0.0);
        assert_eq!(m.inclusion_exclusion(), 0.0);
        assert_eq!(m.exhaustive(), 0.0);
    }

    #[test]
    fn exact_matches_exhaustive_across_configs() {
        // Every valid (R, P) configuration for N = 8 and a few for N = 10.
        let mut checked = 0;
        for n in [8usize, 10] {
            for r in 1..n {
                for p in 0..n {
                    if r + p > n || (n - r - p) % r != 0 {
                        continue;
                    }
                    let m = model(n, r, p);
                    let exact = m.exact();
                    let truth = m.exhaustive();
                    assert!(
                        (exact - truth).abs() < 1e-9,
                        "N={n} R={r} P={p}: model {exact} vs truth {truth}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 10, "expected to cover many configurations");
    }

    #[test]
    fn inclusion_exclusion_equals_exact() {
        for (n, r, p) in [(8, 1, 1), (8, 2, 2), (8, 2, 0), (12, 4, 4), (11, 3, 5), (11, 1, 9)] {
            let m = model(n, r, p);
            assert!(
                (m.exact() - m.inclusion_exclusion()).abs() < 1e-9,
                "N={n} R={r} P={p}"
            );
        }
    }

    #[test]
    fn union_bound_is_an_upper_bound() {
        for (n, r, p) in [(8, 1, 1), (8, 2, 2), (12, 4, 4), (16, 2, 2)] {
            let m = model(n, r, p);
            assert!(m.union_bound() >= m.exact() - 1e-12, "N={n} R={r} P={p}");
        }
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let m = model(12, 4, 4);
        let exact = m.exact();
        let mc = m.monte_carlo(200_000, 17);
        assert!((mc - exact).abs() < 0.01, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn more_prediction_bits_reduce_error() {
        // N = 11, R = 1: accuracy must increase monotonically with P
        // (more carry visibility can only help).
        let mut last = f64::INFINITY;
        // Every P aligns when R = 1, so the whole range is valid.
        for p in 0..=9usize {
            let m = model(11, 1, p);
            let e = m.exact();
            assert!(e <= last + 1e-12, "P={p}: {e} > {last}");
            last = e;
        }
    }

    #[test]
    fn p_zero_is_worse_than_any_prediction() {
        // Disjoint blocks (P = 0) lose every boundary carry; adding any
        // prediction window strictly helps at matched R.
        let blocked = model(12, 4, 0).exact();
        let predicted = model(12, 4, 4).exact();
        assert!(predicted < blocked);
    }

    #[test]
    fn table_iv_extremes() {
        // The paper's text: for N = 11 the maximum-accuracy configuration
        // is (R=1, P=9); (R=3, P=5) achieves ≥ 90 %.
        let best = model(11, 1, 9).accuracy_percent();
        let r3p5 = model(11, 3, 5).accuracy_percent();
        assert!(best > r3p5);
        assert!(r3p5 >= 90.0, "R3P5 accuracy {r3p5}");
        assert!(best >= 99.0, "R1P9 accuracy {best}");
    }

    #[test]
    fn analytical_med_tracks_simulation() {
        for (n, r, p) in [(12usize, 4usize, 4usize), (16, 4, 4), (12, 2, 4), (16, 2, 6)] {
            let m = model(n, r, p);
            let analytic = m.mean_error_distance();
            let mc = m.mean_error_distance_monte_carlo(200_000, 0x3D);
            let rel = (analytic - mc).abs() / mc.max(1e-12);
            // First-order accuracy degrades when sub-adder windows overlap
            // (P > R): joint events and result-section wraps correlate.
            let tolerance = if p <= r { 0.10 } else { 0.40 };
            assert!(
                rel < tolerance,
                "N={n} R={r} P={p}: analytic {analytic} vs mc {mc} (rel {rel:.3})"
            );
            // It must remain an over-estimate-biased bound, never wildly low.
            assert!(analytic > 0.5 * mc, "N={n} R={r} P={p}");
        }
    }

    #[test]
    fn med_shrinks_with_prediction() {
        let coarse = model(12, 4, 0).mean_error_distance();
        let fine = model(12, 4, 4).mean_error_distance();
        assert!(fine < coarse);
    }

    #[test]
    fn carry_probability_structure() {
        // For GeAr(8, 4, 0): the single event is "carry into bit 4", whose
        // probability is q_4 with q_0 = 0, q_{t+1} = ¼ + ½ q_t.
        let mut q = 0.0f64;
        for _ in 0..4 {
            q = 0.25 + 0.5 * q;
        }
        let m = model(8, 4, 0);
        assert!((m.exact() - q).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_guard() {
        let m = model(16, 8, 8);
        // k = 1 so it returns early… use a multi-sub-adder wide config to
        // check the panic instead.
        assert_eq!(m.exact(), 0.0);
    }
}
