//! The [`Adder`] abstraction and the exact reference implementation.
//!
//! Everything downstream of this crate — multipliers, SAD accelerators,
//! convolution filters, the video encoder — is generic over `dyn Adder` or
//! `A: Adder`, which is exactly the cross-layer hook the paper argues for:
//! swap the arithmetic at the logic layer, observe quality at the
//! application layer.

use xlac_core::bits;
use xlac_core::characterization::HwCost;

/// A combinational two-operand adder of a fixed operand width.
///
/// Implementations return the full `width + 1`-bit sum (carry-out in bit
/// `width`). Operands wider than `width` bits are truncated, matching
/// hardware semantics.
///
/// The trait is object-safe so heterogeneous accelerator datapaths can mix
/// adder implementations at runtime via configuration words.
pub trait Adder {
    /// Operand width in bits.
    fn width(&self) -> usize;

    /// Adds two `width`-bit operands, returning a `width + 1`-bit result.
    fn add(&self, a: u64, b: u64) -> u64;

    /// Human-readable instance name (e.g. `"GeAr(N=11,R=3,P=5)"`).
    fn name(&self) -> String;

    /// Hardware cost of this instance under the workspace cost model.
    fn hw_cost(&self) -> HwCost;

    /// The exact reference sum for this width (used by quality harnesses).
    fn exact(&self, a: u64, b: u64) -> u64 {
        let w = self.width();
        bits::truncate(a, w) + bits::truncate(b, w)
    }
}

impl<T: Adder + ?Sized> Adder for &T {
    fn width(&self) -> usize {
        (**self).width()
    }
    fn add(&self, a: u64, b: u64) -> u64 {
        (**self).add(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn hw_cost(&self) -> HwCost {
        (**self).hw_cost()
    }
}

impl<T: Adder + ?Sized> Adder for Box<T> {
    fn width(&self) -> usize {
        (**self).width()
    }
    fn add(&self, a: u64, b: u64) -> u64 {
        (**self).add(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn hw_cost(&self) -> HwCost {
        (**self).hw_cost()
    }
}

/// The exact behavioural adder: simply `a + b` on truncated operands.
///
/// Its cost model is an accurate ripple-carry chain, which is the baseline
/// the paper compares approximate designs against.
///
/// # Example
///
/// ```
/// use xlac_adders::{Adder, AccurateAdder};
///
/// let add8 = AccurateAdder::new(8);
/// assert_eq!(add8.add(200, 100), 300); // 9-bit result, no truncation
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccurateAdder {
    width: usize,
}

impl AccurateAdder {
    /// Creates an exact adder of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63 (the result must fit in 64
    /// bits).
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!((1..=63).contains(&width), "adder width {width} out of 1..=63");
        AccurateAdder { width }
    }
}

impl Adder for AccurateAdder {
    fn width(&self) -> usize {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        bits::truncate(a, self.width) + bits::truncate(b, self.width)
    }

    fn name(&self) -> String {
        format!("Accurate(N={})", self.width)
    }

    fn hw_cost(&self) -> HwCost {
        crate::full_adder::FullAdderKind::Accurate.hw_cost() * self.width as f64
    }
}

/// Bit-sliced 64-lane companion to [`Adder`].
///
/// Operand batches are **bit-plane vectors** (`xlac_core::lanes` layout):
/// `a[i]` holds bit `i` of all 64 lane values. Planes past the slice end
/// read as zero and planes at index `>= width` are ignored, mirroring the
/// truncate-on-input semantics of [`Adder::add`]. The result always has
/// exactly `width + 1` planes with the carry-out in the last plane, so
/// for every lane `j`
///
/// ```text
/// lanes::lane(&adder.add_x64(&a, &b), j) == adder.add(lanes::lane(&a, j), lanes::lane(&b, j))
/// ```
///
/// `Sync` is a supertrait so `dyn AdderX64` batches can be shared across
/// the `xlac-sim` sweep threads.
pub trait AdderX64: Adder + Sync {
    /// Adds two `width`-bit 64-lane operand batches; returns `width + 1`
    /// planes (carry-out last).
    fn add_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64>;
}

/// Reads plane `i`, treating missing planes as zero.
#[inline]
#[must_use]
pub(crate) fn plane(planes: &[u64], i: usize) -> u64 {
    planes.get(i).copied().unwrap_or(0)
}

impl AdderX64 for AccurateAdder {
    fn add_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        // An exact ripple of accurate cells is the (unique) exact sum.
        let mut out = Vec::with_capacity(self.width + 1);
        let mut carry = 0u64;
        for i in 0..self.width {
            let (s, c) = crate::full_adder::FullAdderKind::Accurate.eval_x64(
                plane(a, i),
                plane(b, i),
                carry,
            );
            out.push(s);
            carry = c;
        }
        out.push(carry);
        out
    }
}

impl<T: AdderX64 + ?Sized> AdderX64 for &T {
    fn add_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        (**self).add_x64(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_adder_is_plus() {
        let a = AccurateAdder::new(8);
        for (x, y) in [(0u64, 0u64), (255, 255), (17, 200)] {
            assert_eq!(a.add(x, y), x + y);
        }
    }

    #[test]
    fn operands_are_truncated() {
        let a = AccurateAdder::new(4);
        assert_eq!(a.add(0xFF, 0x01), 0xF + 0x1);
    }

    #[test]
    fn result_carries_out() {
        let a = AccurateAdder::new(4);
        assert_eq!(a.add(0xF, 0xF), 0x1E); // 5-bit result
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Adder> = Box::new(AccurateAdder::new(8));
        assert_eq!(boxed.add(1, 2), 3);
        assert_eq!(boxed.width(), 8);
        // Blanket impls forward through references and boxes.
        let by_ref: &dyn Adder = &AccurateAdder::new(8);
        assert_eq!(by_ref.add(3, 4), 7);
        assert_eq!(by_ref.exact(3, 4), 7);
    }

    #[test]
    fn cost_scales_with_width() {
        let small = AccurateAdder::new(4).hw_cost();
        let large = AccurateAdder::new(16).hw_cost();
        assert!(large.area_ge > small.area_ge);
        assert!(large.delay > small.delay);
    }

    #[test]
    #[should_panic(expected = "out of 1..=63")]
    fn zero_width_rejected() {
        let _ = AccurateAdder::new(0);
    }
}
