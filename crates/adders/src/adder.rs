//! The [`Adder`] abstraction and the exact reference implementation.
//!
//! Everything downstream of this crate — multipliers, SAD accelerators,
//! convolution filters, the video encoder — is generic over `dyn Adder` or
//! `A: Adder`, which is exactly the cross-layer hook the paper argues for:
//! swap the arithmetic at the logic layer, observe quality at the
//! application layer.

use xlac_core::bits;
use xlac_core::characterization::HwCost;

/// A combinational two-operand adder of a fixed operand width.
///
/// Implementations return the full `width + 1`-bit sum (carry-out in bit
/// `width`). Operands wider than `width` bits are truncated, matching
/// hardware semantics.
///
/// The trait is object-safe so heterogeneous accelerator datapaths can mix
/// adder implementations at runtime via configuration words.
pub trait Adder {
    /// Operand width in bits.
    fn width(&self) -> usize;

    /// Adds two `width`-bit operands, returning a `width + 1`-bit result.
    fn add(&self, a: u64, b: u64) -> u64;

    /// Human-readable instance name (e.g. `"GeAr(N=11,R=3,P=5)"`).
    fn name(&self) -> String;

    /// Hardware cost of this instance under the workspace cost model.
    fn hw_cost(&self) -> HwCost;

    /// The exact reference sum for this width (used by quality harnesses).
    fn exact(&self, a: u64, b: u64) -> u64 {
        let w = self.width();
        bits::truncate(a, w) + bits::truncate(b, w)
    }
}

impl<T: Adder + ?Sized> Adder for &T {
    fn width(&self) -> usize {
        (**self).width()
    }
    fn add(&self, a: u64, b: u64) -> u64 {
        (**self).add(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn hw_cost(&self) -> HwCost {
        (**self).hw_cost()
    }
}

impl<T: Adder + ?Sized> Adder for Box<T> {
    fn width(&self) -> usize {
        (**self).width()
    }
    fn add(&self, a: u64, b: u64) -> u64 {
        (**self).add(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn hw_cost(&self) -> HwCost {
        (**self).hw_cost()
    }
}

/// The exact behavioural adder: simply `a + b` on truncated operands.
///
/// Its cost model is an accurate ripple-carry chain, which is the baseline
/// the paper compares approximate designs against.
///
/// # Example
///
/// ```
/// use xlac_adders::{Adder, AccurateAdder};
///
/// let add8 = AccurateAdder::new(8);
/// assert_eq!(add8.add(200, 100), 300); // 9-bit result, no truncation
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccurateAdder {
    width: usize,
}

impl AccurateAdder {
    /// Creates an exact adder of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63 (the result must fit in 64
    /// bits).
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!((1..=63).contains(&width), "adder width {width} out of 1..=63");
        AccurateAdder { width }
    }
}

impl Adder for AccurateAdder {
    fn width(&self) -> usize {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        bits::truncate(a, self.width) + bits::truncate(b, self.width)
    }

    fn name(&self) -> String {
        format!("Accurate(N={})", self.width)
    }

    fn hw_cost(&self) -> HwCost {
        crate::full_adder::FullAdderKind::Accurate.hw_cost() * self.width as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_adder_is_plus() {
        let a = AccurateAdder::new(8);
        for (x, y) in [(0u64, 0u64), (255, 255), (17, 200)] {
            assert_eq!(a.add(x, y), x + y);
        }
    }

    #[test]
    fn operands_are_truncated() {
        let a = AccurateAdder::new(4);
        assert_eq!(a.add(0xFF, 0x01), 0xF + 0x1);
    }

    #[test]
    fn result_carries_out() {
        let a = AccurateAdder::new(4);
        assert_eq!(a.add(0xF, 0xF), 0x1E); // 5-bit result
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Adder> = Box::new(AccurateAdder::new(8));
        assert_eq!(boxed.add(1, 2), 3);
        assert_eq!(boxed.width(), 8);
        // Blanket impls forward through references and boxes.
        let by_ref: &dyn Adder = &AccurateAdder::new(8);
        assert_eq!(by_ref.add(3, 4), 7);
        assert_eq!(by_ref.exact(3, 4), 7);
    }

    #[test]
    fn cost_scales_with_width() {
        let small = AccurateAdder::new(4).hw_cost();
        let large = AccurateAdder::new(16).hw_cost();
        assert!(large.area_ge > small.area_ge);
        assert!(large.delay > small.delay);
    }

    #[test]
    #[should_panic(expected = "out of 1..=63")]
    fn zero_width_rejected() {
        let _ = AccurateAdder::new(0);
    }
}
