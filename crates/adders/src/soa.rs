//! Additional state-of-the-art approximate adders for baseline
//! comparisons: LOA and the truncated adder.
//!
//! GeAr generalizes the carry-prediction family (ACA-I/II, ETAII, GDA —
//! see [`crate::GeArAdder`]'s constructors); the other major family cuts
//! the *lower part* of the addition entirely. The two classics:
//!
//! * [`LoaAdder`] — the Lower-part OR Adder (Mahdiani et al.): the low
//!   `k` sum bits are computed by a bitwise OR (one OR gate per bit, no
//!   carry chain), with one AND gate feeding the upper accurate part's
//!   carry-in from the top lower-part bit.
//! * [`TruncatedAdder`] — the low `k` result bits are constants
//!   (all-ones, the expected-error-minimizing choice) and the upper part
//!   adds the upper operand bits exactly. Zero logic in the lower part.
//!
//! Both plug into every accelerator in the workspace through the
//! [`Adder`] trait, widening the baseline set of the benches.
//!
//! # Example
//!
//! ```
//! use xlac_adders::{Adder, LoaAdder, TruncatedAdder};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let loa = LoaAdder::new(8, 3)?;
//! assert_eq!(loa.add(0b1010_0000, 0b0100_0000), 0b1110_0000); // upper exact
//! let tra = TruncatedAdder::new(8, 3)?;
//! assert_eq!(tra.add(0, 0) & 0b111, 0b111); // low bits forced to 1
//! # Ok(())
//! # }
//! ```

use crate::adder::Adder;
use crate::full_adder::FullAdderKind;
use xlac_core::bits;
use xlac_core::characterization::HwCost;
use xlac_core::error::{Result, XlacError};

fn check_split(width: usize, lower: usize) -> Result<()> {
    if width == 0 || width > 63 {
        return Err(XlacError::InvalidWidth { width, max: 63 });
    }
    if lower > width {
        return Err(XlacError::InvalidConfiguration(format!(
            "lower part of {lower} bits exceeds the {width}-bit width"
        )));
    }
    Ok(())
}

/// The Lower-part OR Adder: low bits OR'ed, upper bits exact, carry-in
/// from the AND of the top lower-part bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoaAdder {
    width: usize,
    lower: usize,
}

impl LoaAdder {
    /// Creates an LOA with `lower` OR'ed low bits.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidConfiguration`] when `lower > width`
    /// or the width is out of `1..=63`.
    pub fn new(width: usize, lower: usize) -> Result<Self> {
        check_split(width, lower)?;
        Ok(LoaAdder { width, lower })
    }

    /// Number of OR'ed low bits.
    #[must_use]
    pub fn lower_bits(&self) -> usize {
        self.lower
    }
}

impl Adder for LoaAdder {
    fn width(&self) -> usize {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let a = bits::truncate(a, self.width);
        let b = bits::truncate(b, self.width);
        if self.lower == 0 {
            return a + b;
        }
        let low = (a | b) & bits::mask(self.lower);
        let cin = if self.lower == 0 {
            0
        } else {
            bits::bit(a, self.lower - 1) & bits::bit(b, self.lower - 1)
        };
        let high = (a >> self.lower) + (b >> self.lower) + cin;
        low | (high << self.lower)
    }

    fn name(&self) -> String {
        format!("LOA(N={},L={})", self.width, self.lower)
    }

    fn hw_cost(&self) -> HwCost {
        // Lower part: one OR per bit plus the carry-generation AND;
        // upper part: an accurate ripple chain.
        let or_gate = HwCost { area_ge: 1.33, power_nw: 60.0, delay: 1.5 };
        let and_gate = HwCost { area_ge: 1.33, power_nw: 60.0, delay: 1.5 };
        let upper = FullAdderKind::Accurate.hw_cost() * (self.width - self.lower) as f64;
        or_gate * self.lower as f64 + and_gate + upper
    }
}

/// The truncated adder: low result bits constant-one, upper bits exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedAdder {
    width: usize,
    truncated: usize,
}

impl TruncatedAdder {
    /// Creates a truncated adder with `truncated` constant low bits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LoaAdder::new`].
    pub fn new(width: usize, truncated: usize) -> Result<Self> {
        check_split(width, truncated)?;
        Ok(TruncatedAdder { width, truncated })
    }

    /// Number of truncated low bits.
    #[must_use]
    pub fn truncated_bits(&self) -> usize {
        self.truncated
    }
}

impl Adder for TruncatedAdder {
    fn width(&self) -> usize {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let a = bits::truncate(a, self.width);
        let b = bits::truncate(b, self.width);
        if self.truncated == 0 {
            return a + b;
        }
        let low = bits::mask(self.truncated);
        let high = (a >> self.truncated) + (b >> self.truncated);
        low | (high << self.truncated)
    }

    fn name(&self) -> String {
        format!("TruA(N={},T={})", self.width, self.truncated)
    }

    fn hw_cost(&self) -> HwCost {
        // The truncated bits cost nothing; the upper chain is accurate.
        FullAdderKind::Accurate.hw_cost() * (self.width - self.truncated) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlac_core::metrics::exhaustive_binary;

    #[test]
    fn loa_with_zero_lower_is_exact() {
        let loa = LoaAdder::new(8, 0).unwrap();
        for (a, b) in [(255u64, 255u64), (17, 42), (0, 0)] {
            assert_eq!(loa.add(a, b), a + b);
        }
    }

    #[test]
    fn loa_upper_part_is_exact_when_lower_is_quiet() {
        let loa = LoaAdder::new(8, 3).unwrap();
        // Low 3 bits zero on both operands: OR = 0, cin = 0 → exact.
        assert_eq!(loa.add(0b1010_1000, 0b0101_0000), 0b1010_1000 + 0b0101_0000);
    }

    #[test]
    fn loa_error_is_bounded_by_lower_part() {
        let k = 3usize;
        let loa = LoaAdder::new(8, k).unwrap();
        for a in 0u64..256 {
            for b in 0u64..256 {
                let err = loa.add(a, b).abs_diff(a + b);
                assert!(err < 1 << (k + 1), "|{a}+{b}| err {err}");
            }
        }
    }

    #[test]
    fn loa_carry_generation_bit_works() {
        let loa = LoaAdder::new(8, 2).unwrap();
        // a = b = 0b10: top lower-part bits both 1 → carry into bit 2.
        assert_eq!(loa.add(0b10, 0b10), 0b110); // OR low = 0b10, carry adds 0b100
    }

    #[test]
    fn truncated_low_bits_are_constant_ones() {
        let tra = TruncatedAdder::new(8, 4).unwrap();
        for (a, b) in [(0u64, 0u64), (0xFF, 0xFF), (0x12, 0x34)] {
            assert_eq!(tra.add(a, b) & 0xF, 0xF);
        }
    }

    #[test]
    fn truncated_upper_part_is_exact() {
        let tra = TruncatedAdder::new(8, 4).unwrap();
        let sum = tra.add(0xA0, 0x30);
        assert_eq!(sum >> 4, (0xA0u64 >> 4) + (0x30 >> 4));
    }

    #[test]
    fn quality_ordering_loa_beats_truncation() {
        // LOA keeps data-dependent low bits, truncation throws them away:
        // at equal split the LOA has lower mean error distance.
        let loa = LoaAdder::new(8, 4).unwrap();
        let tra = TruncatedAdder::new(8, 4).unwrap();
        let s_loa = exhaustive_binary(8, 8, |a, b| a + b, |a, b| loa.add(a, b));
        let s_tra = exhaustive_binary(8, 8, |a, b| a + b, |a, b| tra.add(a, b));
        assert!(s_loa.mean_error_distance < s_tra.mean_error_distance);
    }

    #[test]
    fn cost_ordering_truncation_beats_loa() {
        // …and the converse on cost: truncation is cheaper than LOA,
        // which is cheaper than the accurate chain.
        let acc = crate::ripple::RippleCarryAdder::accurate(8).hw_cost();
        let loa = LoaAdder::new(8, 4).unwrap().hw_cost();
        let tra = TruncatedAdder::new(8, 4).unwrap().hw_cost();
        assert!(tra.area_ge < loa.area_ge);
        assert!(loa.area_ge < acc.area_ge);
    }

    #[test]
    fn validation() {
        assert!(LoaAdder::new(8, 9).is_err());
        assert!(LoaAdder::new(0, 0).is_err());
        assert!(TruncatedAdder::new(8, 9).is_err());
        assert!(TruncatedAdder::new(64, 0).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(LoaAdder::new(8, 3).unwrap().name(), "LOA(N=8,L=3)");
        assert_eq!(TruncatedAdder::new(8, 3).unwrap().name(), "TruA(N=8,T=3)");
    }

    #[test]
    fn adders_compose_into_subtractors() {
        use crate::subtractor::Subtractor;
        let sub = Subtractor::new(LoaAdder::new(8, 2).unwrap());
        let err = sub.abs_diff(200, 55).abs_diff(145);
        assert!(err < 16);
    }
}
