//! An accurate carry-lookahead adder — the fast-exact baseline.
//!
//! The paper positions approximate adders against *both* poles of the
//! exact design space: the small-but-slow ripple-carry adder and the
//! fast-but-large carry-lookahead adder. GeAr's pitch is RCA-like area at
//! CLA-like delay, paid for in accuracy; this type supplies the CLA corner
//! so benchmarks can show the three-way trade-off.
//!
//! # Example
//!
//! ```
//! use xlac_adders::{Adder, CarryLookaheadAdder, RippleCarryAdder};
//!
//! let cla = CarryLookaheadAdder::new(32);
//! let rca = RippleCarryAdder::accurate(32);
//! assert_eq!(cla.add(7, 9), 16);
//! // CLA trades area for delay.
//! assert!(cla.hw_cost().delay < rca.hw_cost().delay);
//! assert!(cla.hw_cost().area_ge > rca.hw_cost().area_ge);
//! ```

use crate::adder::Adder;
use xlac_core::bits;
use xlac_core::characterization::HwCost;

/// A two-level carry-lookahead adder of a fixed width.
///
/// Functionally exact; only the cost model differs from
/// [`crate::AccurateAdder`]: logarithmic delay, ~40 % area premium over a
/// ripple chain (typical for 4-bit lookahead groups with a group-carry
/// tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarryLookaheadAdder {
    width: usize,
}

impl CarryLookaheadAdder {
    /// Creates a CLA of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!((1..=63).contains(&width), "adder width {width} out of 1..=63");
        CarryLookaheadAdder { width }
    }

    /// Computes all carries explicitly through generate/propagate recurrence
    /// (returned LSB-first including the final carry-out), demonstrating the
    /// lookahead structure rather than deferring to `+`.
    #[must_use]
    pub fn carries(&self, a: u64, b: u64) -> Vec<u64> {
        let a = bits::truncate(a, self.width);
        let b = bits::truncate(b, self.width);
        let mut carries = Vec::with_capacity(self.width + 1);
        let mut c = 0u64;
        carries.push(c);
        for i in 0..self.width {
            let g = bits::bit(a, i) & bits::bit(b, i);
            let p = bits::bit(a, i) ^ bits::bit(b, i);
            c = g | (p & c);
            carries.push(c);
        }
        carries
    }
}

impl Adder for CarryLookaheadAdder {
    fn width(&self) -> usize {
        self.width
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let a = bits::truncate(a, self.width);
        let b = bits::truncate(b, self.width);
        let carries = self.carries(a, b);
        let mut sum = 0u64;
        for (i, &carry) in carries.iter().enumerate().take(self.width) {
            let s = bits::bit(a, i) ^ bits::bit(b, i) ^ carry;
            sum |= s << i;
        }
        sum | (carries[self.width] << self.width)
    }

    fn name(&self) -> String {
        format!("CLA(N={})", self.width)
    }

    fn hw_cost(&self) -> HwCost {
        let n = self.width as f64;
        let fa = crate::full_adder::FullAdderKind::Accurate.hw_cost();
        // Per-bit cells plus the lookahead tree (~40 % area/power premium);
        // delay grows with the log-depth group-carry tree.
        let levels = (self.width as f64).log2().ceil().max(1.0);
        HwCost {
            area_ge: fa.area_ge * n * 1.4,
            power_nw: fa.power_nw * n * 1.4,
            delay: 2.0 * levels + 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cla_is_exact_exhaustively() {
        let cla = CarryLookaheadAdder::new(8);
        for a in 0u64..256 {
            for b in 0u64..256 {
                assert_eq!(cla.add(a, b), a + b);
            }
        }
    }

    #[test]
    fn carries_match_reference() {
        let cla = CarryLookaheadAdder::new(8);
        let (a, b) = (0b1011_0101u64, 0b0110_1011u64);
        let carries = cla.carries(a, b);
        assert_eq!(carries.len(), 9);
        // Reference: carry into bit i of the true sum.
        for i in 0..=8u32 {
            let partial = (bits::truncate(a, i as usize)) + (bits::truncate(b, i as usize));
            let expect = partial >> i;
            assert_eq!(carries[i as usize], expect, "carry into bit {i}");
        }
    }

    #[test]
    fn delay_grows_logarithmically() {
        let d8 = CarryLookaheadAdder::new(8).hw_cost().delay;
        let d16 = CarryLookaheadAdder::new(16).hw_cost().delay;
        let d32 = CarryLookaheadAdder::new(32).hw_cost().delay;
        assert!(d16 > d8);
        assert!(d32 > d16);
        assert!((d16 - d8 - (d32 - d16)).abs() < 1e-9, "constant increment per doubling");
    }

    #[test]
    fn faster_but_larger_than_ripple() {
        use crate::ripple::RippleCarryAdder;
        let cla = CarryLookaheadAdder::new(16);
        let rca = RippleCarryAdder::accurate(16);
        assert!(cla.hw_cost().delay < rca.hw_cost().delay);
        assert!(cla.hw_cost().area_ge > rca.hw_cost().area_ge);
    }
}
