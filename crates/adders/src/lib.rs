//! # xlac-adders — the paper's approximate adder library
//!
//! This crate implements Section 4 of the paper (its primary arithmetic
//! contribution) in full:
//!
//! * [`full_adder`] — the accurate 1-bit full adder and the five IMPACT
//!   approximate cells of **Table III** (`AccuFA`, `ApxFA1`…`ApxFA5`),
//!   specified by their exact truth tables and synthesizable into gate
//!   netlists for characterization.
//! * [`ripple`] — multi-bit ripple-carry adders whose low-order cells can
//!   be swapped for any approximate FA kind (the lpACLib construction used
//!   in the SAD and filter case studies).
//! * [`gear`] — the **GeAr** generic accuracy-configurable adder
//!   (`N`, `R`, `P` sub-adder model) with its iterative error detection
//!   and correction stage, plus constructors mapping the state-of-the-art
//!   adders (ACA-I, ACA-II, ETAII, GDA) onto GeAr configurations.
//! * [`error_model`] — GeAr's analytical error-probability models: the
//!   paper's inclusion–exclusion formula over error-generating events, an
//!   exact automaton evaluation, and a Monte-Carlo estimator; all three
//!   agree and let a compiler-level user rank configurations *without*
//!   exhaustive simulation (the point of Table IV).
//! * [`subtractor`] — two's-complement (absolute-)difference built on any
//!   adder, the second primitive of the SAD accelerator.
//! * [`cla`] — an accurate carry-lookahead adder as the
//!   performance/accuracy baseline.
//!
//! # Example
//!
//! ```
//! use xlac_adders::{Adder, GeArAdder, RippleCarryAdder, FullAdderKind};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! // The paper's illustration: N=12, R=4, P=4 (two 8-bit sub-adders).
//! let gear = GeArAdder::new(12, 4, 4)?;
//! let out = gear.add(0x0F0, 0x00F);
//! assert_eq!(out.value, 0x0FF); // no carry chain crosses the split: exact
//!
//! // Approximate the 4 LSBs of an 8-bit ripple adder with ApxFA1 cells.
//! let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx1, 4)?;
//! let sum = rca.add(0b0001_0000, 0b0010_0000); // high bits stay exact
//! assert_eq!(sum, 0b0011_0000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod cla;
pub mod divider;
pub mod error_model;
pub mod full_adder;
pub mod gear;
pub mod hw;
pub mod ripple;
pub mod soa;
pub mod subtractor;

pub use adder::{AccurateAdder, Adder, AdderX64};
pub use cla::CarryLookaheadAdder;
pub use divider::ArrayDivider;
pub use error_model::GearErrorModel;
pub use full_adder::FullAdderKind;
pub use gear::{AddOutcome, AddOutcomeX64, GeArAdder};
pub use ripple::RippleCarryAdder;
pub use soa::{LoaAdder, TruncatedAdder};
pub use subtractor::Subtractor;
