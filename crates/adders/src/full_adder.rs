//! The 1-bit full adders of Table III: the accurate cell and the five
//! IMPACT-style approximate cells.
//!
//! Each cell is specified by its exact truth table from the paper. The
//! approximate cells rely on logic simplification — e.g. `ApxFA2`/`ApxFA3`
//! compute `Sum = !Cout` (saving the parity XORs), and `ApxFA5` is the most
//! aggressive design, pure wiring: `Sum = B`, `Cout = A`.
//!
//! Characterization runs the cells through the workspace synthesis flow
//! (`xlac-logic`): Quine–McCluskey minimization to a gate netlist, then
//! structural area, critical-path delay and toggle-counted power — the same
//! methodology (relative to our normalized library) as the paper's
//! DC + PrimeTime numbers in the last rows of Table III.
//!
//! # Example
//!
//! ```
//! use xlac_adders::FullAdderKind;
//!
//! // ApxFA5 wires the inputs to the outputs.
//! let (sum, cout) = FullAdderKind::Apx5.eval(1, 0, 1);
//! assert_eq!((sum, cout), (0, 1)); // Sum = B = 0, Cout = A = 1
//!
//! // Error-case counts match Table III exactly.
//! assert_eq!(FullAdderKind::Apx5.error_cases(), 4);
//! assert_eq!(FullAdderKind::Accurate.error_cases(), 0);
//! ```

use std::fmt;
use std::sync::OnceLock;
use xlac_core::characterization::HwCost;
use xlac_logic::synth::{characterize, synthesize};
use xlac_logic::{GateKind, Netlist, NetlistBuilder, TruthTable};

/// The six full-adder cells of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FullAdderKind {
    /// The exact full adder (`AccuFA`).
    Accurate,
    /// `ApxFA1` — IMPACT approximation 1 (2 error cases).
    Apx1,
    /// `ApxFA2` — exact carry, `Sum = !Cout` (2 error cases).
    Apx2,
    /// `ApxFA3` — approximate carry `B + A·Cin`, `Sum = !Cout`
    /// (3 error cases).
    Apx3,
    /// `ApxFA4` — IMPACT approximation 4 (3 error cases).
    Apx4,
    /// `ApxFA5` — pure wiring, `Sum = B`, `Cout = A` (4 error cases,
    /// zero logic).
    Apx5,
}

/// Truth tables from Table III of the paper.
///
/// Indexed by `[kind][a << 2 | b << 1 | cin]`; each entry is
/// `(sum, cout)`.
const TABLE: [[(u8, u8); 8]; 6] = [
    // index:   000     001     010     011     100     101     110     111   (a,b,cin)
    /* Accu */ [(0, 0), (1, 0), (1, 0), (0, 1), (1, 0), (0, 1), (0, 1), (1, 1)],
    /* Apx1 */ [(0, 0), (1, 0), (0, 1), (0, 1), (0, 0), (0, 1), (0, 1), (1, 1)],
    /* Apx2 */ [(1, 0), (1, 0), (1, 0), (0, 1), (1, 0), (0, 1), (0, 1), (0, 1)],
    /* Apx3 */ [(1, 0), (1, 0), (0, 1), (0, 1), (1, 0), (0, 1), (0, 1), (0, 1)],
    /* Apx4 */ [(0, 0), (1, 0), (0, 0), (1, 0), (0, 1), (0, 1), (0, 1), (1, 1)],
    /* Apx5 */ [(0, 0), (0, 0), (1, 0), (1, 0), (0, 1), (0, 1), (1, 1), (1, 1)],
];

impl FullAdderKind {
    /// All six cells, in Table III order.
    pub const ALL: [FullAdderKind; 6] = [
        FullAdderKind::Accurate,
        FullAdderKind::Apx1,
        FullAdderKind::Apx2,
        FullAdderKind::Apx3,
        FullAdderKind::Apx4,
        FullAdderKind::Apx5,
    ];

    /// The five approximate cells, in increasing aggressiveness.
    pub const APPROXIMATE: [FullAdderKind; 5] = [
        FullAdderKind::Apx1,
        FullAdderKind::Apx2,
        FullAdderKind::Apx3,
        FullAdderKind::Apx4,
        FullAdderKind::Apx5,
    ];

    fn table_index(self) -> usize {
        match self {
            FullAdderKind::Accurate => 0,
            FullAdderKind::Apx1 => 1,
            FullAdderKind::Apx2 => 2,
            FullAdderKind::Apx3 => 3,
            FullAdderKind::Apx4 => 4,
            FullAdderKind::Apx5 => 5,
        }
    }

    /// Evaluates the cell.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when an input is not 0 or 1.
    #[inline]
    #[must_use]
    pub fn eval(self, a: u64, b: u64, cin: u64) -> (u64, u64) {
        debug_assert!(a <= 1 && b <= 1 && cin <= 1);
        let (s, c) = TABLE[self.table_index()][(a << 2 | b << 1 | cin) as usize];
        (u64::from(s), u64::from(c))
    }

    /// Evaluates the cell on 64 independent lanes at once (bit-sliced
    /// form): bit `j` of each word is the value of that input/output in
    /// lane `j`, so one call performs 64 full-adder evaluations.
    ///
    /// Each arm is the boolean-algebra form of the cell's Table III truth
    /// table; an exhaustive unit test pins it to [`FullAdderKind::eval`].
    #[inline]
    #[must_use]
    pub fn eval_x64(self, a: u64, b: u64, cin: u64) -> (u64, u64) {
        match self {
            FullAdderKind::Accurate => {
                let axb = a ^ b;
                (axb ^ cin, (a & b) | (axb & cin))
            }
            FullAdderKind::Apx1 => (cin & !(a ^ b), b | (a & cin)),
            FullAdderKind::Apx2 => {
                let c = (a & b) | (a & cin) | (b & cin);
                (!c, c)
            }
            FullAdderKind::Apx3 => {
                let c = b | (a & cin);
                (!c, c)
            }
            FullAdderKind::Apx4 => (cin & !(a & !b), a),
            FullAdderKind::Apx5 => (b, a),
        }
    }

    /// The cell's truth table, inputs packed `a | b<<1 | cin<<2`, outputs
    /// packed `sum | cout<<1` (the packing used by the netlist flow).
    #[must_use]
    pub fn truth_table(self) -> TruthTable {
        TruthTable::from_fn(3, 2, |x| {
            let (a, b, cin) = (x & 1, (x >> 1) & 1, (x >> 2) & 1);
            let (s, c) = self.eval(a, b, cin);
            s | (c << 1)
        })
    }

    /// Synthesizes the cell through the QM flow (the uniform
    /// characterization path for Table III).
    #[must_use]
    pub fn synthesized_netlist(self) -> Netlist {
        synthesize(&self.to_string(), &self.truth_table())
            .expect("full-adder tables always synthesize")
    }

    /// A hand-mapped structural netlist where the published cell structure
    /// is XOR-rich or pure wiring; falls back to [`Self::synthesized_netlist`]
    /// for the SOP-friendly approximate cells.
    ///
    /// * `Accurate`: `sum = (a⊕b)⊕cin`, `cout = a·b + (a⊕b)·cin` (the
    ///   standard mirror-adder decomposition).
    /// * `Apx2`/`Apx3`: carry logic plus a single inverter for the sum.
    /// * `Apx5`: zero gates — outputs are input wires.
    #[must_use]
    pub fn structural_netlist(self) -> Netlist {
        match self {
            FullAdderKind::Accurate => {
                let mut nb = NetlistBuilder::new("AccuFA", 3);
                let (a, b, cin) = (nb.input(0), nb.input(1), nb.input(2));
                let axb = nb.gate(GateKind::Xor2, &[a, b]);
                let sum = nb.gate(GateKind::Xor2, &[axb, cin]);
                let ab = nb.gate(GateKind::And2, &[a, b]);
                let pc = nb.gate(GateKind::And2, &[axb, cin]);
                let cout = nb.gate(GateKind::Or2, &[ab, pc]);
                nb.output(sum);
                nb.output(cout);
                nb.finish().expect("structural AccuFA")
            }
            FullAdderKind::Apx1 => {
                // sum = cin·(a XNOR b), cout = b + a·cin.
                let mut nb = NetlistBuilder::new("ApxFA1", 3);
                let (a, b, cin) = (nb.input(0), nb.input(1), nb.input(2));
                let xnor = nb.gate(GateKind::Xnor2, &[a, b]);
                let sum = nb.gate(GateKind::And2, &[xnor, cin]);
                let ac = nb.gate(GateKind::And2, &[a, cin]);
                let cout = nb.gate(GateKind::Or2, &[b, ac]);
                nb.output(sum);
                nb.output(cout);
                nb.finish().expect("structural ApxFA1")
            }
            FullAdderKind::Apx2 => {
                // Exact (majority) carry in its cheap factored form
                // maj = b·(a + cin) + a·cin; sum = !cout.
                let mut nb = NetlistBuilder::new("ApxFA2", 3);
                let (a, b, cin) = (nb.input(0), nb.input(1), nb.input(2));
                let a_or_c = nb.gate(GateKind::Or2, &[a, cin]);
                let t = nb.gate(GateKind::And2, &[b, a_or_c]);
                let ac = nb.gate(GateKind::And2, &[a, cin]);
                let cout = nb.gate(GateKind::Or2, &[t, ac]);
                let sum = nb.gate(GateKind::Not, &[cout]);
                nb.output(sum);
                nb.output(cout);
                nb.finish().expect("structural ApxFA2")
            }
            FullAdderKind::Apx3 => {
                // cout = b + a·cin, sum = !cout.
                let mut nb = NetlistBuilder::new("ApxFA3", 3);
                let (a, b, cin) = (nb.input(0), nb.input(1), nb.input(2));
                let ac = nb.gate(GateKind::And2, &[a, cin]);
                let cout = nb.gate(GateKind::Or2, &[b, ac]);
                let sum = nb.gate(GateKind::Not, &[cout]);
                nb.output(sum);
                nb.output(cout);
                nb.finish().expect("structural ApxFA3")
            }
            FullAdderKind::Apx4 => {
                // sum = cin·!(a·b'), cout = a (wire).
                let mut nb = NetlistBuilder::new("ApxFA4", 3);
                let (a, b, cin) = (nb.input(0), nb.input(1), nb.input(2));
                let nb_ = nb.gate(GateKind::Not, &[b]);
                let abn = nb.gate(GateKind::And2, &[a, nb_]);
                let t = nb.gate(GateKind::Not, &[abn]);
                let sum = nb.gate(GateKind::And2, &[cin, t]);
                nb.output(sum);
                nb.output(a);
                nb.finish().expect("structural ApxFA4")
            }
            FullAdderKind::Apx5 => {
                let mut nb = NetlistBuilder::new("ApxFA5", 3);
                let (a, b) = (nb.input(0), nb.input(1));
                nb.output(b); // sum = B
                nb.output(a); // cout = A
                nb.finish().expect("structural ApxFA5")
            }
        }
    }

    /// Number of truth-table rows on which the cell differs from the
    /// accurate full adder — the `#Error Cases` row of Table III
    /// (0, 2, 2, 3, 3, 4).
    #[must_use]
    pub fn error_cases(self) -> usize {
        self.truth_table()
            .error_cases(&FullAdderKind::Accurate.truth_table())
            .expect("same shape")
    }

    /// Hardware cost of the cell via the structural netlist (cached — the
    /// power simulation is deterministic, so the cost is a constant of the
    /// workspace).
    #[must_use]
    pub fn hw_cost(self) -> HwCost {
        static COSTS: OnceLock<[HwCost; 6]> = OnceLock::new();
        COSTS.get_or_init(|| {
            let mut costs = [HwCost::ZERO; 6];
            for kind in FullAdderKind::ALL {
                let nl = kind.structural_netlist();
                costs[kind.table_index()] = characterize(&nl, 4096, 0xFA);
            }
            costs
        })[self.table_index()]
    }

    /// `true` for the exact cell.
    #[must_use]
    pub fn is_accurate(self) -> bool {
        self == FullAdderKind::Accurate
    }
}

impl fmt::Display for FullAdderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FullAdderKind::Accurate => "AccuFA",
            FullAdderKind::Apx1 => "ApxFA1",
            FullAdderKind::Apx2 => "ApxFA2",
            FullAdderKind::Apx3 => "ApxFA3",
            FullAdderKind::Apx4 => "ApxFA4",
            FullAdderKind::Apx5 => "ApxFA5",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_cell_is_a_full_adder() {
        for x in 0u64..8 {
            let (a, b, cin) = (x & 1, (x >> 1) & 1, (x >> 2) & 1);
            let (s, c) = FullAdderKind::Accurate.eval(a, b, cin);
            let total = a + b + cin;
            assert_eq!(s, total & 1);
            assert_eq!(c, total >> 1);
        }
    }

    #[test]
    fn eval_x64_matches_the_truth_table_on_every_lane_pattern() {
        // All 8 scalar input combinations, broadcast through the 64-lane
        // form by packing each combination into the lane that equals its
        // index modulo 8 — covers every lane position and combination.
        for kind in FullAdderKind::ALL {
            let mut a = 0u64;
            let mut b = 0u64;
            let mut cin = 0u64;
            for lane in 0..64u64 {
                let x = lane % 8;
                a |= (x >> 2 & 1) << lane;
                b |= (x >> 1 & 1) << lane;
                cin |= (x & 1) << lane;
            }
            let (s, c) = kind.eval_x64(a, b, cin);
            for lane in 0..64u64 {
                let (es, ec) =
                    kind.eval((a >> lane) & 1, (b >> lane) & 1, (cin >> lane) & 1);
                assert_eq!((s >> lane) & 1, es, "{kind} sum lane {lane}");
                assert_eq!((c >> lane) & 1, ec, "{kind} carry lane {lane}");
            }
        }
    }

    #[test]
    fn error_cases_match_table_iii() {
        let expected = [0usize, 2, 2, 3, 3, 4];
        for (kind, want) in FullAdderKind::ALL.iter().zip(expected) {
            assert_eq!(kind.error_cases(), want, "{kind}");
        }
    }

    #[test]
    fn apx2_and_apx3_compute_sum_as_inverted_carry() {
        for kind in [FullAdderKind::Apx2, FullAdderKind::Apx3] {
            for x in 0u64..8 {
                let (a, b, cin) = (x & 1, (x >> 1) & 1, (x >> 2) & 1);
                let (s, c) = kind.eval(a, b, cin);
                assert_eq!(s, 1 - c, "{kind} at {x:03b}");
            }
        }
    }

    #[test]
    fn apx2_keeps_the_exact_carry() {
        for x in 0u64..8 {
            let (a, b, cin) = (x & 1, (x >> 1) & 1, (x >> 2) & 1);
            let (_, c_apx) = FullAdderKind::Apx2.eval(a, b, cin);
            let (_, c_acc) = FullAdderKind::Accurate.eval(a, b, cin);
            assert_eq!(c_apx, c_acc);
        }
    }

    #[test]
    fn apx5_is_pure_wiring() {
        for x in 0u64..8 {
            let (a, b, cin) = (x & 1, (x >> 1) & 1, (x >> 2) & 1);
            let (s, c) = FullAdderKind::Apx5.eval(a, b, cin);
            assert_eq!(s, b);
            assert_eq!(c, a);
        }
        let nl = FullAdderKind::Apx5.structural_netlist();
        assert_eq!(nl.gate_count(), 0);
        let cost = FullAdderKind::Apx5.hw_cost();
        assert_eq!(cost.area_ge, 0.0);
        assert_eq!(cost.power_nw, 0.0);
    }

    #[test]
    fn structural_netlists_match_truth_tables() {
        for kind in FullAdderKind::ALL {
            let nl = kind.structural_netlist();
            let tt = kind.truth_table();
            assert_eq!(
                xlac_logic::synth::verify_against(&nl, &tt),
                0,
                "{kind} structural netlist diverges from its truth table"
            );
        }
    }

    #[test]
    fn synthesized_netlists_match_truth_tables() {
        for kind in FullAdderKind::ALL {
            let nl = kind.synthesized_netlist();
            let tt = kind.truth_table();
            assert_eq!(xlac_logic::synth::verify_against(&nl, &tt), 0, "{kind}");
        }
    }

    #[test]
    fn approximate_cells_are_cheaper_than_accurate() {
        let acc = FullAdderKind::Accurate.hw_cost();
        for kind in FullAdderKind::APPROXIMATE {
            let cost = kind.hw_cost();
            assert!(
                cost.area_ge < acc.area_ge,
                "{kind} area {} !< accurate {}",
                cost.area_ge,
                acc.area_ge
            );
            assert!(cost.power_nw < acc.power_nw, "{kind} power");
        }
    }

    #[test]
    fn cost_ordering_is_broadly_monotone_in_aggressiveness() {
        // Table III shows area decreasing from AccuFA to ApxFA5 (with
        // small local variations); at minimum the extremes must hold.
        let first = FullAdderKind::Apx1.hw_cost();
        let last = FullAdderKind::Apx5.hw_cost();
        assert!(last.area_ge < first.area_ge);
        assert!(last.power_nw < first.power_nw);
    }

    #[test]
    fn display_names() {
        assert_eq!(FullAdderKind::Accurate.to_string(), "AccuFA");
        assert_eq!(FullAdderKind::Apx4.to_string(), "ApxFA4");
    }

    #[test]
    fn hw_cost_is_cached_and_stable() {
        let a = FullAdderKind::Apx1.hw_cost();
        let b = FullAdderKind::Apx1.hw_cost();
        assert_eq!(a, b);
    }
}
