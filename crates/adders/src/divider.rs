//! A restoring array divider on (approximate) subtractor rows.
//!
//! The paper's component list for accelerator generation names "adder,
//! subtractor, multiplier, divider, etc."; the divider is the classic
//! stress case for approximation because every quotient bit is a
//! *decision* (did the trial subtraction borrow?), so a wrong LSB in the
//! comparison can flip a whole quotient bit. [`ArrayDivider`] implements
//! restoring division with one trial-subtractor row per quotient bit; the
//! rows run on any [`FullAdderKind`] with a configurable number of
//! approximate LSBs, which is exactly how an approximate array divider is
//! built in hardware.
//!
//! # Example
//!
//! ```
//! use xlac_adders::divider::ArrayDivider;
//! use xlac_adders::FullAdderKind;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let exact = ArrayDivider::accurate(8)?;
//! assert_eq!(exact.divide(200, 7)?, (28, 4));
//!
//! let approx = ArrayDivider::new(8, FullAdderKind::Apx3, 2)?;
//! let (q, _r) = approx.divide(200, 7)?;
//! assert!(q.abs_diff(28) <= 8);
//! # Ok(())
//! # }
//! ```

use crate::full_adder::FullAdderKind;
use crate::ripple::RippleCarryAdder;
use crate::subtractor::Subtractor;
use xlac_core::bits;
use xlac_core::characterization::HwCost;
use xlac_core::error::{Result, XlacError};

/// A restoring array divider for `width`-bit dividends and divisors.
#[derive(Debug, Clone)]
pub struct ArrayDivider {
    width: usize,
    kind: FullAdderKind,
    approx_lsbs: usize,
    /// Trial subtractor, one bit wider than the operands (the partial
    /// remainder is shifted before each trial).
    sub: Subtractor<RippleCarryAdder>,
}

impl ArrayDivider {
    /// Builds a divider whose trial-subtraction rows approximate
    /// `approx_lsbs` LSBs with `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidWidth`] for widths outside `1..=31` or
    /// [`XlacError::InvalidConfiguration`] when `approx_lsbs` exceeds the
    /// row width.
    pub fn new(width: usize, kind: FullAdderKind, approx_lsbs: usize) -> Result<Self> {
        if !(1..=31).contains(&width) {
            return Err(XlacError::InvalidWidth { width, max: 31 });
        }
        let row_width = width + 1;
        if approx_lsbs > row_width {
            return Err(XlacError::InvalidConfiguration(format!(
                "{approx_lsbs} approximate LSBs exceed the {row_width}-bit row"
            )));
        }
        Ok(ArrayDivider {
            width,
            kind,
            approx_lsbs,
            sub: Subtractor::new(RippleCarryAdder::with_approx_lsbs(
                row_width,
                kind,
                approx_lsbs,
            )?),
        })
    }

    /// The exact baseline divider.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ArrayDivider::new`].
    pub fn accurate(width: usize) -> Result<Self> {
        ArrayDivider::new(width, FullAdderKind::Accurate, 0)
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The approximate cell kind of the trial rows.
    #[must_use]
    pub fn cell_kind(&self) -> FullAdderKind {
        self.kind
    }

    /// Number of approximated LSBs per row.
    #[must_use]
    pub fn approx_lsbs(&self) -> usize {
        self.approx_lsbs
    }

    /// Divides, returning `(quotient, remainder)` as computed by the
    /// (possibly approximate) array.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidConfiguration`] for a zero divisor and
    /// [`XlacError::OperandOutOfRange`] for operands beyond the width.
    pub fn divide(&self, dividend: u64, divisor: u64) -> Result<(u64, u64)> {
        if divisor == 0 {
            return Err(XlacError::InvalidConfiguration("division by zero".into()));
        }
        if !bits::fits(dividend, self.width) {
            return Err(XlacError::OperandOutOfRange { value: dividend, width: self.width });
        }
        if !bits::fits(divisor, self.width) {
            return Err(XlacError::OperandOutOfRange { value: divisor, width: self.width });
        }
        let mut remainder = 0u64;
        let mut quotient = 0u64;
        for i in (0..self.width).rev() {
            remainder = (remainder << 1) | bits::bit(dividend, i);
            // Trial subtraction through the (approximate) row; `no_borrow`
            // is the quotient-bit decision.
            let (diff, no_borrow) = self.sub.sub(remainder, divisor);
            if no_borrow {
                remainder = bits::truncate(diff, self.width + 1);
                quotient |= 1 << i;
            }
            // Restoring: on borrow the remainder is left unchanged.
        }
        Ok((quotient, remainder))
    }

    /// The exact reference.
    #[must_use]
    pub fn divide_exact(dividend: u64, divisor: u64) -> (u64, u64) {
        (dividend / divisor, dividend % divisor)
    }

    /// Hardware cost: `width` trial-subtractor rows in sequence (each row
    /// feeds the next partial remainder).
    #[must_use]
    pub fn hw_cost(&self) -> HwCost {
        self.sub.hw_cost() * self.width as f64
    }

    /// Instance name, e.g. `"Div(N=8,ApxFA3,2 LSBs)"`.
    #[must_use]
    pub fn name(&self) -> String {
        if self.kind.is_accurate() {
            format!("Div(N={})", self.width)
        } else {
            format!("Div(N={},{},{} LSBs)", self.width, self.kind, self.approx_lsbs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlac_core::metrics::ErrorStats;

    #[test]
    fn exact_division_exhaustive_8_bit() {
        let div = ArrayDivider::accurate(8).unwrap();
        for dividend in 0u64..256 {
            for divisor in 1u64..256 {
                let (q, r) = div.divide(dividend, divisor).unwrap();
                assert_eq!((q, r), (dividend / divisor, dividend % divisor), "{dividend}/{divisor}");
            }
        }
    }

    #[test]
    fn division_by_zero_is_rejected() {
        let div = ArrayDivider::accurate(8).unwrap();
        assert!(div.divide(100, 0).is_err());
    }

    #[test]
    fn operand_range_is_checked() {
        let div = ArrayDivider::accurate(4).unwrap();
        assert!(div.divide(16, 1).is_err());
        assert!(div.divide(1, 16).is_err());
    }

    #[test]
    fn approximate_divider_quality_degrades_with_lsbs() {
        let mut last = -1.0f64;
        for lsbs in [0usize, 1, 2, 3] {
            let div = ArrayDivider::new(8, FullAdderKind::Apx3, lsbs).unwrap();
            let stats = ErrorStats::from_pairs(
                (1u64..256)
                    .flat_map(|d| (0u64..256).map(move |n| (n, d)))
                    .map(|(n, d)| (n / d, div.divide(n, d).unwrap().0)),
            );
            assert!(
                stats.mean_error_distance >= last - 1e-9,
                "quotient error fell at {lsbs} LSBs"
            );
            last = stats.mean_error_distance;
        }
        assert!(last > 0.0, "3 approximate LSBs must bite");
    }

    #[test]
    fn quotient_decisions_make_division_error_sensitive() {
        // The headline property: at the SAME number of approximate LSBs,
        // the divider's relative error exceeds a plain adder's — the
        // quotient-bit decision feedback amplifies LSB noise.
        let div = ArrayDivider::new(8, FullAdderKind::Apx5, 2).unwrap();
        let add = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx5, 2).unwrap();
        use crate::adder::Adder;
        let div_stats = ErrorStats::from_pairs(
            (1u64..256)
                .step_by(3)
                .flat_map(|d| (0u64..256).step_by(5).map(move |n| (n, d)))
                .map(|(n, d)| (n / d, div.divide(n, d).unwrap().0)),
        );
        let add_stats = ErrorStats::from_pairs(
            (0u64..256)
                .step_by(3)
                .flat_map(|a| (0u64..256).step_by(5).map(move |b| (a, b)))
                .map(|(a, b)| (a + b, add.add(a, b))),
        );
        assert!(
            div_stats.mean_relative_error > add_stats.mean_relative_error,
            "divider rel err {} must exceed adder rel err {}",
            div_stats.mean_relative_error,
            add_stats.mean_relative_error
        );
    }

    #[test]
    fn remainder_invariant_holds_for_exact() {
        let div = ArrayDivider::accurate(6).unwrap();
        for n in 0u64..64 {
            for d in 1u64..64 {
                let (q, r) = div.divide(n, d).unwrap();
                assert_eq!(q * d + r, n);
                assert!(r < d);
            }
        }
    }

    #[test]
    fn cost_scales_with_width_and_falls_with_approximation() {
        let small = ArrayDivider::accurate(4).unwrap().hw_cost();
        let large = ArrayDivider::accurate(16).unwrap().hw_cost();
        assert!(large.area_ge > small.area_ge * 3.0);
        let approx = ArrayDivider::new(16, FullAdderKind::Apx5, 4).unwrap().hw_cost();
        assert!(approx.area_ge < large.area_ge);
    }

    #[test]
    fn names() {
        assert_eq!(ArrayDivider::accurate(8).unwrap().name(), "Div(N=8)");
        assert_eq!(
            ArrayDivider::new(8, FullAdderKind::Apx2, 3).unwrap().name(),
            "Div(N=8,ApxFA2,3 LSBs)"
        );
    }
}
