//! Two's-complement subtraction and absolute difference on top of any
//! [`Adder`].
//!
//! The SAD accelerator of Section 6 is built from *approximate adders and
//! subtractors*; a hardware subtractor is an adder with inverted second
//! operand and an injected carry (`a − b = a + !b + 1`). The carry
//! injection is folded into a trailing increment stage (half-adder chain),
//! which stays exact — the approximation lives in the main adder, exactly
//! as in the paper's SAD variants.
//!
//! # Example
//!
//! ```
//! use xlac_adders::{AccurateAdder, Subtractor};
//!
//! let sub = Subtractor::new(AccurateAdder::new(8));
//! assert_eq!(sub.abs_diff(200, 55), 145);
//! assert_eq!(sub.abs_diff(55, 200), 145);
//! let (mag, a_ge_b) = sub.sub(55, 200);
//! assert_eq!((mag, a_ge_b), (145, false));
//! ```

use crate::adder::{plane, Adder, AdderX64};
use xlac_core::bits;
use xlac_core::characterization::HwCost;

/// A subtractor wrapping an adder implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subtractor<A> {
    adder: A,
}

impl<A: Adder> Subtractor<A> {
    /// Wraps `adder` as the datapath of the subtraction.
    #[must_use]
    pub fn new(adder: A) -> Self {
        Subtractor { adder }
    }

    /// The wrapped adder.
    #[must_use]
    pub fn adder(&self) -> &A {
        &self.adder
    }

    /// Consumes the subtractor, returning the wrapped adder.
    #[must_use]
    pub fn into_inner(self) -> A {
        self.adder
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.adder.width()
    }

    /// Computes `|a − b|` and the sign: returns `(magnitude, a >= b)`.
    ///
    /// Internally `a + !b` runs through the (possibly approximate) adder;
    /// the `+1` and the conditional negation are the exact wrapping stages
    /// every hardware SAD datapath carries.
    #[must_use]
    pub fn sub(&self, a: u64, b: u64) -> (u64, bool) {
        let w = self.width();
        let a = bits::truncate(a, w);
        let b = bits::truncate(b, w);
        let nb = bits::truncate(!b, w);
        // a + !b through the approximate datapath, then the +1 increment.
        // The increment can ripple past the adder's carry-out (raw >> w can
        // reach 2), which still means "no borrow".
        let raw = self.adder.add(a, nb) + 1;
        let carry = raw >> w;
        let low = bits::truncate(raw, w);
        if carry >= 1 {
            // a >= b (no borrow): magnitude is the low word.
            (low, true)
        } else {
            // Borrow: magnitude is the two's complement of the low word.
            (bits::truncate(low.wrapping_neg(), w), false)
        }
    }

    /// Absolute difference `|a − b|`.
    #[must_use]
    pub fn abs_diff(&self, a: u64, b: u64) -> u64 {
        self.sub(a, b).0
    }

    /// Bit-sliced [`Subtractor::sub`]: 64 subtractions per call.
    ///
    /// Returns `(magnitude, a_ge_b)` where the magnitude is a `width`-plane
    /// batch and `a_ge_b` is a lane mask (bit `j` set when lane `j` had no
    /// borrow).
    ///
    /// The exact `+1` increment stage is rippled across `width + 2`
    /// planes: the increment can carry **past the adder's carry-out**
    /// (`raw >> w == 2` on `a + !b == 2^{w+1} − 2` shapes), and both
    /// carry planes mean "no borrow". Collapsing them to one plane is the
    /// latent wrap bug the PR 2 reachability analysis flagged; the
    /// regression tests in `tests/bitslice_differential.rs` pin the
    /// behaviour on those witnesses.
    #[must_use]
    pub fn sub_x64(&self, a: &[u64], b: &[u64]) -> (Vec<u64>, u64)
    where
        A: AdderX64,
    {
        let w = self.width();
        let nb: Vec<u64> = (0..w).map(|i| !plane(b, i)).collect();
        let raw = self.adder.add_x64(a, &nb);
        // The +1 increment over w+2 planes (carry-in of 1 on every lane).
        let mut inc = Vec::with_capacity(w + 2);
        let mut carry = u64::MAX;
        for &r in raw.iter().take(w + 1) {
            inc.push(r ^ carry);
            carry &= r;
        }
        inc.push(carry);
        // No borrow when raw + 1 reached bit w *or* bit w+1.
        let a_ge_b = inc[w] | inc[w + 1];
        // Per-lane two's complement of the low word for the borrow lanes.
        let mut neg = Vec::with_capacity(w);
        let mut c = u64::MAX;
        for &i in inc.iter().take(w) {
            let ni = !i;
            neg.push(ni ^ c);
            c &= ni;
        }
        let mag =
            (0..w).map(|i| (inc[i] & a_ge_b) | (neg[i] & !a_ge_b)).collect();
        (mag, a_ge_b)
    }

    /// Bit-sliced [`Subtractor::abs_diff`].
    #[must_use]
    pub fn abs_diff_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64>
    where
        A: AdderX64,
    {
        self.sub_x64(a, b).0
    }

    /// Hardware cost: the adder plus an increment/negate stage of roughly
    /// one half-adder cell per bit.
    #[must_use]
    pub fn hw_cost(&self) -> HwCost {
        let half_adder_cell = HwCost { area_ge: 3.66, power_nw: 150.0, delay: 2.0 };
        self.adder.hw_cost() + half_adder_cell * (self.width() as f64 * 0.5)
    }

    /// Instance name, e.g. `"Sub(GeAr(N=8,R=2,P=2))"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("Sub({})", self.adder.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::AccurateAdder;
    use crate::full_adder::FullAdderKind;
    use crate::ripple::RippleCarryAdder;

    #[test]
    fn exact_subtractor_is_abs_diff() {
        let sub = Subtractor::new(AccurateAdder::new(8));
        for a in (0u64..256).step_by(7) {
            for b in (0u64..256).step_by(11) {
                assert_eq!(sub.abs_diff(a, b), a.abs_diff(b), "{a} - {b}");
                let (mag, ge) = sub.sub(a, b);
                assert_eq!(ge, a >= b);
                assert_eq!(mag, a.abs_diff(b));
            }
        }
    }

    #[test]
    fn zero_difference() {
        let sub = Subtractor::new(AccurateAdder::new(8));
        assert_eq!(sub.sub(42, 42), (0, true));
    }

    #[test]
    fn extremes() {
        let sub = Subtractor::new(AccurateAdder::new(8));
        assert_eq!(sub.abs_diff(255, 0), 255);
        assert_eq!(sub.abs_diff(0, 255), 255);
    }

    #[test]
    fn approximate_subtractor_mean_error_is_small() {
        // Individual |a-b| errors can be amplified when the exact +1
        // increment ripples across a wrong low word (a real hardware
        // artifact — the reason 6-LSB approximation wrecks quality in
        // Fig.9), but the *mean* error over the operand space stays within
        // the approximated-prefix scale.
        let k = 3usize;
        for kind in FullAdderKind::APPROXIMATE {
            let rca = RippleCarryAdder::with_approx_lsbs(8, kind, k).unwrap();
            let sub = Subtractor::new(rca);
            let stats = xlac_core::metrics::ErrorStats::from_pairs(
                (0u64..256).flat_map(|a| (0u64..256).map(move |b| (a, b))).map(|(a, b)| {
                    (a.abs_diff(b), sub.abs_diff(a, b))
                }),
            );
            assert!(
                stats.mean_error_distance < (1 << (k + 1)) as f64,
                "{kind}: mean error {}",
                stats.mean_error_distance
            );
            assert!(stats.error_rate < 1.0, "{kind} errs on every input");
        }
    }

    #[test]
    fn approximate_subtractor_is_exact_without_approx_cells() {
        let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx5, 0).unwrap();
        let sub = Subtractor::new(rca);
        for (a, b) in [(17u64, 200u64), (255, 1), (128, 127)] {
            assert_eq!(sub.abs_diff(a, b), a.abs_diff(b));
        }
    }

    #[test]
    fn cost_exceeds_bare_adder() {
        let adder = AccurateAdder::new(8);
        let adder_cost = adder.hw_cost();
        let sub = Subtractor::new(adder);
        assert!(sub.hw_cost().area_ge > adder_cost.area_ge);
    }

    #[test]
    fn name_nests_the_adder() {
        let sub = Subtractor::new(AccurateAdder::new(8));
        assert_eq!(sub.name(), "Sub(Accurate(N=8))");
    }

    #[test]
    fn into_inner_roundtrip() {
        let sub = Subtractor::new(AccurateAdder::new(8));
        assert_eq!(sub.into_inner(), AccurateAdder::new(8));
    }
}
