//! Multi-bit ripple-carry adders with per-bit cell selection.
//!
//! This is the lpACLib-style construction the paper uses in its accelerator
//! case studies: an `N`-bit ripple-carry chain whose `k` least-significant
//! cells are replaced by one of the approximate full adders of
//! [`crate::FullAdderKind`], while the upper cells stay accurate. Because
//! application data concentrates signal energy in the upper bits, the
//! quality loss is bounded while every approximated cell saves its full
//! area/power delta.
//!
//! # Example
//!
//! ```
//! use xlac_adders::{Adder, RippleCarryAdder, FullAdderKind};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let exact = RippleCarryAdder::accurate(8);
//! assert_eq!(exact.add(123, 45), 168);
//!
//! let lp = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx3, 4)?;
//! assert!(lp.hw_cost().area_ge < exact.hw_cost().area_ge);
//! # Ok(())
//! # }
//! ```

use crate::adder::{plane, Adder, AdderX64};
use crate::full_adder::FullAdderKind;
use xlac_core::bits;
use xlac_core::characterization::HwCost;
use xlac_core::error::{Result, XlacError};

/// A ripple-carry adder built from an explicit per-bit sequence of
/// full-adder cells (index 0 = LSB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RippleCarryAdder {
    cells: Vec<FullAdderKind>,
}

impl RippleCarryAdder {
    /// An all-accurate ripple-carry adder of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    #[must_use]
    pub fn accurate(width: usize) -> Self {
        assert!((1..=64).contains(&width), "adder width {width} out of 1..=64");
        RippleCarryAdder { cells: vec![FullAdderKind::Accurate; width] }
    }

    /// A `width`-bit adder whose `approx_lsbs` least-significant cells use
    /// `kind` and whose upper cells are accurate.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidConfiguration`] when
    /// `approx_lsbs > width` or `width` is outside `1..=64`.
    pub fn with_approx_lsbs(width: usize, kind: FullAdderKind, approx_lsbs: usize) -> Result<Self> {
        if width == 0 || width > 64 {
            return Err(XlacError::InvalidWidth { width, max: 64 });
        }
        if approx_lsbs > width {
            return Err(XlacError::InvalidConfiguration(format!(
                "{approx_lsbs} approximate LSBs exceed the {width}-bit width"
            )));
        }
        let mut cells = vec![kind; approx_lsbs];
        cells.resize(width, FullAdderKind::Accurate);
        Ok(RippleCarryAdder { cells })
    }

    /// An adder from an explicit cell sequence (index 0 = LSB).
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidWidth`] for empty or > 64-cell chains.
    pub fn from_cells(cells: Vec<FullAdderKind>) -> Result<Self> {
        if cells.is_empty() || cells.len() > 64 {
            return Err(XlacError::InvalidWidth { width: cells.len(), max: 64 });
        }
        Ok(RippleCarryAdder { cells })
    }

    /// The per-bit cell sequence (index 0 = LSB).
    #[must_use]
    pub fn cells(&self) -> &[FullAdderKind] {
        &self.cells
    }

    /// Number of approximate (non-accurate) cells.
    #[must_use]
    pub fn approx_cell_count(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_accurate()).count()
    }
}

impl RippleCarryAdder {
    /// The allocation-free core of [`AdderX64::add_x64`]: ripples into a
    /// caller-provided buffer of exactly `width() + 1` planes (carry-out
    /// last). Hot paths (the recursive multiplier, `xlac-sim` sweeps) use
    /// this with stack buffers.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != width() + 1`.
    #[inline]
    pub fn add_x64_into(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let w = self.cells.len();
        assert_eq!(out.len(), w + 1, "output buffer must hold width + 1 planes");
        let mut carry = 0u64;
        for (i, cell) in self.cells.iter().enumerate() {
            let (s, c) = cell.eval_x64(plane(a, i), plane(b, i), carry);
            out[i] = s;
            carry = c;
        }
        out[w] = carry;
    }
}

impl AdderX64 for RippleCarryAdder {
    /// Bit-sliced ripple: the same LSB→MSB cell walk as
    /// [`RippleCarryAdder::add`], with each cell evaluated on 64 lanes at
    /// once via [`FullAdderKind::eval_x64`].
    fn add_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.cells.len() + 1];
        self.add_x64_into(a, b, &mut out);
        out
    }
}

impl Adder for RippleCarryAdder {
    fn width(&self) -> usize {
        self.cells.len()
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        let w = self.cells.len();
        let a = bits::truncate(a, w);
        let b = bits::truncate(b, w);
        let mut carry = 0u64;
        let mut sum = 0u64;
        for (i, cell) in self.cells.iter().enumerate() {
            let (s, c) = cell.eval((a >> i) & 1, (b >> i) & 1, carry);
            sum |= s << i;
            carry = c;
        }
        // At the full 64-bit width the carry-out has no representable
        // position: the scalar result is the sum modulo 2^64 (the
        // bit-sliced `add_x64` still reports the carry as plane 64).
        if w < 64 {
            sum | (carry << w)
        } else {
            sum
        }
    }

    fn name(&self) -> String {
        let approx = self.approx_cell_count();
        if approx == 0 {
            format!("RCA(N={})", self.cells.len())
        } else {
            // Report the dominant approximate cell for readability.
            let kind = self.cells.iter().find(|c| !c.is_accurate()).expect("approx > 0");
            format!("RCA(N={},{}x{})", self.cells.len(), approx, kind)
        }
    }

    fn hw_cost(&self) -> HwCost {
        // Cells are laid out in series along the carry chain: areas and
        // powers add, and the carry chain sets the delay.
        self.cells.iter().map(|c| c.hw_cost()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_chain_equals_plus() {
        let rca = RippleCarryAdder::accurate(8);
        for a in (0u64..256).step_by(17) {
            for b in (0u64..256).step_by(13) {
                assert_eq!(rca.add(a, b), a + b);
            }
        }
    }

    #[test]
    fn carry_out_appears_in_bit_width() {
        let rca = RippleCarryAdder::accurate(4);
        assert_eq!(rca.add(0xF, 0x1), 0x10);
    }

    #[test]
    fn zero_approx_lsbs_is_exact() {
        let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx5, 0).unwrap();
        for (a, b) in [(255u64, 255u64), (0, 0), (170, 85)] {
            assert_eq!(rca.add(a, b), a + b);
        }
    }

    #[test]
    fn approximate_lsbs_leave_upper_bits_intact_when_no_cross_carry() {
        // Operands with zero low nibbles never exercise the approximate
        // cells' error cases in a way that crosses into the upper bits for
        // cells whose (0,0,0) row is exact.
        let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx1, 4).unwrap();
        assert_eq!(rca.add(0xA0, 0x30), 0xD0);
    }

    #[test]
    fn apx5_lsbs_pass_operand_b_through() {
        // With ApxFA5 in the low k bits, sum bit i = b_i and the carry into
        // bit k equals a_{k-1}.
        let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx5, 4).unwrap();
        let a = 0b0000_1010u64;
        let b = 0b0000_0110u64;
        let sum = rca.add(a, b);
        assert_eq!(sum & 0xF, b & 0xF, "low bits mirror operand B");
        // Carry into bit 4 is a_3 = 1.
        assert_eq!(sum >> 4, 1);
    }

    #[test]
    fn error_is_bounded_by_approximated_prefix() {
        // Any error introduced by the k approximate LSBs is below
        // 2^(k+1): the worst case is a wrong carry into bit k plus wrong
        // low bits.
        for kind in FullAdderKind::APPROXIMATE {
            let k = 4usize;
            let rca = RippleCarryAdder::with_approx_lsbs(10, kind, k).unwrap();
            for a in (0u64..1024).step_by(7) {
                for b in (0u64..1024).step_by(11) {
                    let err = rca.add(a, b).abs_diff(a + b);
                    assert!(err < 1 << (k + 1), "{kind}: err {err} at {a}+{b}");
                }
            }
        }
    }

    #[test]
    fn more_approx_cells_cost_less() {
        let costs: Vec<f64> = (0..=8)
            .map(|k| {
                RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx4, k)
                    .unwrap()
                    .hw_cost()
                    .area_ge
            })
            .collect();
        for pair in costs.windows(2) {
            assert!(pair[1] < pair[0], "area must strictly decrease: {costs:?}");
        }
    }

    #[test]
    fn config_validation() {
        assert!(RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx1, 9).is_err());
        assert!(RippleCarryAdder::with_approx_lsbs(0, FullAdderKind::Apx1, 0).is_err());
        assert!(RippleCarryAdder::with_approx_lsbs(65, FullAdderKind::Apx1, 0).is_err());
        assert!(RippleCarryAdder::from_cells(vec![]).is_err());
    }

    #[test]
    fn full_width_adder_wraps_modulo_2_64() {
        // Width 64 (the recursive 32×32 top-level summation): the scalar
        // result is the mod-2^64 sum, the bit-sliced form keeps the carry
        // in plane 64.
        let rca = RippleCarryAdder::accurate(64);
        assert_eq!(rca.add(u64::MAX, 1), 0);
        assert_eq!(rca.add(u64::MAX, u64::MAX), u64::MAX.wrapping_mul(2));
        let planes = rca.add_x64(&[u64::MAX; 64], &[u64::MAX; 64]);
        assert_eq!(planes.len(), 65);
        assert_eq!(planes[64], u64::MAX, "carry-out plane survives bit-sliced");
    }

    #[test]
    fn name_reports_configuration() {
        let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx2, 3).unwrap();
        assert_eq!(rca.name(), "RCA(N=8,3xApxFA2)");
        assert_eq!(RippleCarryAdder::accurate(8).name(), "RCA(N=8)");
    }

    #[test]
    fn mixed_cell_chain() {
        let rca = RippleCarryAdder::from_cells(vec![
            FullAdderKind::Apx5,
            FullAdderKind::Apx3,
            FullAdderKind::Accurate,
            FullAdderKind::Accurate,
        ])
        .unwrap();
        assert_eq!(rca.width(), 4);
        assert_eq!(rca.approx_cell_count(), 2);
        // Bit 0 (ApxFA5, inputs 0,0,–) is exact here, but bit 1 hits
        // ApxFA3's (0,0,0) error row, where sum = !cout = 1:
        // 0b1000 + 0b0100 = 0b1110 on this chain instead of 0b1100.
        assert_eq!(rca.add(0b1000, 0b0100), 0b1110);
    }
}
