//! GeAr — the Generic Accuracy-configurable adder (Section 4.2).
//!
//! A GeAr adder splits an `N`-bit addition across `k` overlapping `L`-bit
//! sub-adders, `L = R + P`: each sub-adder contributes `R` result bits and
//! uses the `P` preceding operand bits to *predict* its carry-in (the first
//! sub-adder contributes all `L` of its bits). Sub-adder `s` (1-indexed)
//! reads operand bits `[(s-1)·R, (s-1)·R + L)`, so
//! `k = (N − L)/R + 1` and the configuration is valid only when
//! `(N − L)` is a multiple of `R`.
//!
//! The carry chain is cut at every sub-adder boundary, so the critical path
//! is `L` cells instead of `N` — the delay advantage of the design. An
//! error occurs exactly when a sub-adder's `P` prediction bits are all in
//! propagate mode while the previous sub-adder generated a carry
//! (`C_prop ∧ C_out` in the paper's notation); the optional error detection
//! and recovery stage tests that condition and re-executes the offending
//! sub-adder with an injected carry (the paper's "force the LSB to 1"
//! recovery), one correction pass per clock cycle.
//!
//! State-of-the-art approximate adders are special cases, exposed as
//! constructors: ACA-I (`R = 1, P = L−1`), ACA-II (`R = P = L/2`),
//! ETAII (`R = P = block`), and GDA with its block-level configuration.
//!
//! # Example
//!
//! ```
//! use xlac_adders::{Adder, GeArAdder};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let gear = GeArAdder::new(12, 4, 4)?; // the paper's Fig.3 example
//! assert_eq!(gear.sub_adder_count(), 2);
//!
//! // A carry generated at bit 4 lies inside the second sub-adder's P = 4
//! // prediction window, so it is seen and the addition is exact:
//! let out = gear.add(0x0F0, 0x010);
//! assert_eq!(out.value, 0x100);
//! assert_eq!(out.errors_detected, 0);
//!
//! // A carry generated at bit 0 must cross the whole window: the second
//! // sub-adder misses it (and the detector reports it).
//! let out = gear.add(0x0FF, 0x001);
//! assert_ne!(out.value, 0x100);
//! assert_eq!(out.errors_detected, 1);
//!
//! // With correction enabled the result is always exact.
//! let corrected = gear.add_with_correction(0xFFF, 0xFFF, usize::MAX);
//! assert_eq!(corrected.value, 0xFFF + 0xFFF);
//! # Ok(())
//! # }
//! ```

use crate::adder::{Adder, AdderX64};
use crate::full_adder::FullAdderKind;
use xlac_core::bits;
use xlac_core::characterization::HwCost;
use xlac_core::error::{Result, XlacError};

/// A GeAr adder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GeArAdder {
    n: usize,
    r: usize,
    p: usize,
}

/// The result of a GeAr addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddOutcome {
    /// The (possibly approximate) `N + 1`-bit sum.
    pub value: u64,
    /// Number of sub-adders whose error-detection condition fired during
    /// the final evaluation (0 means the result is provably exact).
    pub errors_detected: usize,
    /// Correction passes executed (0 for plain [`GeArAdder::add`]).
    pub correction_iterations: usize,
}

/// The result of a 64-lane bit-sliced GeAr addition.
///
/// `value` is an `N + 1`-plane bit-plane vector (`xlac_core::lanes`
/// layout); the detection/correction counters are tracked per lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddOutcomeX64 {
    /// The `N + 1`-bit sums of all 64 lanes, as bit-planes.
    pub value: Vec<u64>,
    /// Per-lane count of sub-adders whose detection fired in the final
    /// evaluation.
    pub errors_detected: [u8; 64],
    /// Per-lane correction passes executed.
    pub correction_iterations: [u8; 64],
}

impl AddOutcomeX64 {
    /// Extracts one lane as a scalar [`AddOutcome`] — the bridge the
    /// differential tests use to compare against [`GeArAdder::add`].
    #[must_use]
    pub fn lane(&self, lane: usize) -> AddOutcome {
        AddOutcome {
            value: xlac_core::lanes::lane(&self.value, lane),
            errors_detected: usize::from(self.errors_detected[lane]),
            correction_iterations: usize::from(self.correction_iterations[lane]),
        }
    }
}

impl GeArAdder {
    /// Creates a GeAr adder for `n`-bit operands with `r` result bits and
    /// `p` prediction bits per sub-adder.
    ///
    /// # Errors
    ///
    /// Returns [`XlacError::InvalidConfiguration`] unless
    /// `1 ≤ r`, `0 ≤ p`, `r + p ≤ n ≤ 63` and `(n − r − p)` is a multiple
    /// of `r`.
    pub fn new(n: usize, r: usize, p: usize) -> Result<Self> {
        if n == 0 || n > 63 {
            return Err(XlacError::InvalidWidth { width: n, max: 63 });
        }
        if r == 0 {
            return Err(XlacError::InvalidConfiguration(
                "GeAr requires at least one result bit per sub-adder (R >= 1)".into(),
            ));
        }
        let l = r + p;
        if l > n {
            return Err(XlacError::InvalidConfiguration(format!(
                "sub-adder length L = R + P = {l} exceeds operand width N = {n}"
            )));
        }
        if !(n - l).is_multiple_of(r) {
            return Err(XlacError::InvalidConfiguration(format!(
                "(N - L) = {} is not a multiple of R = {r}; the last sub-adder \
                 would not align with bit N-1",
                n - l
            )));
        }
        Ok(GeArAdder { n, r, p })
    }

    /// ACA-I [Verma DATE'08]: every result bit is computed from the `l`
    /// preceding operand bits (`R = 1`, `P = l − 1`).
    ///
    /// # Errors
    ///
    /// Propagates [`GeArAdder::new`] validation.
    pub fn aca_i(n: usize, l: usize) -> Result<Self> {
        if l == 0 {
            return Err(XlacError::InvalidConfiguration("ACA-I needs L >= 1".into()));
        }
        GeArAdder::new(n, 1, l - 1)
    }

    /// ACA-II [Kahng DAC'12]: `R = P = l/2`.
    ///
    /// # Errors
    ///
    /// Propagates [`GeArAdder::new`] validation; `l` must be even.
    pub fn aca_ii(n: usize, l: usize) -> Result<Self> {
        if l == 0 || !l.is_multiple_of(2) {
            return Err(XlacError::InvalidConfiguration(format!(
                "ACA-II needs an even sub-adder length, got {l}"
            )));
        }
        GeArAdder::new(n, l / 2, l / 2)
    }

    /// ETAII [Zhu ISIC'09]: equal-width blocks whose carry is predicted
    /// from the entire previous block (`R = P = block`).
    ///
    /// # Errors
    ///
    /// Propagates [`GeArAdder::new`] validation.
    pub fn etaii(n: usize, block: usize) -> Result<Self> {
        GeArAdder::new(n, block, block)
    }

    /// GDA-style configuration [Ye ICCAD'13]: blocks of `block` result
    /// bits with a carry prediction window of `lookahead` previous bits.
    ///
    /// # Errors
    ///
    /// Propagates [`GeArAdder::new`] validation.
    pub fn gda(n: usize, block: usize, lookahead: usize) -> Result<Self> {
        GeArAdder::new(n, block, lookahead)
    }

    /// Operand width `N`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Result bits per sub-adder `R`.
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Prediction bits per sub-adder `P`.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Sub-adder length `L = R + P`.
    #[must_use]
    pub fn l(&self) -> usize {
        self.r + self.p
    }

    /// Number of sub-adders `k = (N − L)/R + 1`.
    #[must_use]
    pub fn sub_adder_count(&self) -> usize {
        (self.n - self.l()) / self.r + 1
    }

    /// Operand-bit ranges `[lo, hi)` read by each sub-adder, in order.
    #[must_use]
    pub fn sub_adder_windows(&self) -> Vec<(usize, usize)> {
        (0..self.sub_adder_count()).map(|s| (s * self.r, s * self.r + self.l())).collect()
    }

    /// Approximate addition without correction.
    #[must_use]
    pub fn add(&self, a: u64, b: u64) -> AddOutcome {
        self.run(a, b, 0)
    }

    /// Addition with the iterative error detection and recovery stage
    /// enabled, running at most `max_iterations` correction passes.
    ///
    /// Each pass re-executes every sub-adder whose detection condition
    /// fired with an injected carry-in of 1 (the paper's recovery action),
    /// then re-evaluates detection — a correction can expose a new error in
    /// the next sub-adder, which the next pass handles. `k − 1` passes
    /// always reach the exact result.
    #[must_use]
    pub fn add_with_correction(&self, a: u64, b: u64, max_iterations: usize) -> AddOutcome {
        self.run(a, b, max_iterations)
    }

    fn run(&self, a: u64, b: u64, max_iterations: usize) -> AddOutcome {
        let a = bits::truncate(a, self.n);
        let b = bits::truncate(b, self.n);

        // Carry injections decided by the recovery stage (index 0 unused —
        // the first sub-adder has a true carry-in of 0).
        let mut inject = vec![false; self.sub_adder_count()];
        let mut iterations = 0usize;

        loop {
            // `detected` only flags sub-adders that are *not* already
            // carry-injected, so it is exactly the set the next recovery
            // pass must fix.
            let (value, detected) = self.evaluate(a, b, &inject);
            let pending: Vec<usize> =
                detected.iter().enumerate().filter(|(_, &d)| d).map(|(s, _)| s).collect();
            if pending.is_empty() || iterations >= max_iterations {
                return AddOutcome {
                    value,
                    errors_detected: pending.len(),
                    correction_iterations: iterations,
                };
            }
            for s in pending {
                inject[s] = true;
            }
            iterations += 1;
        }
    }

    /// One combinational evaluation with the given carry injections.
    /// Returns the N+1-bit sum and the per-sub-adder detection flags
    /// (meaningful for s >= 1).
    fn evaluate(&self, a: u64, b: u64, inject: &[bool]) -> (u64, Vec<bool>) {
        let r = self.r;
        let p = self.p;
        let l = self.l();
        let k = self.sub_adder_count();

        let mut sum = 0u64;
        let mut detected = vec![false; k];
        let mut prev_carry_out = 0u64;

        for s in 0..k {
            let lo = s * r;
            let wa = bits::field(a, lo, l);
            let wb = bits::field(b, lo, l);
            let cin = u64::from(inject[s]);
            let window_sum = wa + wb + cin;
            let carry_out = window_sum >> l;

            if s == 0 {
                sum = bits::with_field(sum, 0, l, window_sum);
            } else {
                // Detection: previous carry out & all P prediction bits of
                // this sub-adder propagate (a XOR b = 1 across the window's
                // low P bits). With P = 0 the propagate condition is vacuous.
                let prop = bits::field(a ^ b, lo, p) == bits::mask(p);
                detected[s] = prev_carry_out == 1 && prop && !inject[s];
                let result_bits = bits::field(window_sum, p, r);
                sum = bits::with_field(sum, lo + p, r, result_bits);
            }
            prev_carry_out = carry_out;
        }
        // Bit N comes from the last sub-adder's carry-out.
        sum |= prev_carry_out << self.n;
        (sum, detected)
    }

    /// Bit-sliced [`GeArAdder::add`]: 64 independent additions per call.
    ///
    /// Operands are bit-plane batches in the `xlac_core::lanes` layout;
    /// see [`AddOutcomeX64`] for the per-lane result extraction.
    #[must_use]
    pub fn add_x64(&self, a: &[u64], b: &[u64]) -> AddOutcomeX64 {
        self.run_x64(a, b, 0)
    }

    /// Bit-sliced [`GeArAdder::add_with_correction`].
    ///
    /// The recovery loop is evaluated per lane: each pass injects carries
    /// only into sub-adders of lanes whose detection fired and whose own
    /// iteration count is still below `max_iterations`, so every lane
    /// reproduces the scalar outcome exactly (lanes that finish early are
    /// untouched by later passes — their injections no longer change).
    #[must_use]
    pub fn add_with_correction_x64(
        &self,
        a: &[u64],
        b: &[u64],
        max_iterations: usize,
    ) -> AddOutcomeX64 {
        self.run_x64(a, b, max_iterations)
    }

    fn run_x64(&self, a: &[u64], b: &[u64], max_iterations: usize) -> AddOutcomeX64 {
        let k = self.sub_adder_count();
        // Per-sub-adder lane masks of injected carries (index 0 unused).
        let mut inject = vec![0u64; k];
        let mut iters = [0usize; 64];

        loop {
            let (value, detected) = self.evaluate_x64(a, b, &inject);
            let pending: u64 = detected.iter().fold(0, |m, &d| m | d);
            // Lanes already at their iteration budget keep their result.
            let mut frozen = 0u64;
            for (lane, &it) in iters.iter().enumerate() {
                if it >= max_iterations {
                    frozen |= 1 << lane;
                }
            }
            let active = pending & !frozen;
            if active == 0 {
                let mut errors = [0u8; 64];
                for d in &detected {
                    let mut bits = *d;
                    while bits != 0 {
                        let lane = bits.trailing_zeros() as usize;
                        errors[lane] += 1;
                        bits &= bits - 1;
                    }
                }
                let mut iterations = [0u8; 64];
                for (out, &it) in iterations.iter_mut().zip(&iters) {
                    *out = u8::try_from(it.min(k)).expect("GeAr passes bounded by k <= 63");
                }
                return AddOutcomeX64 { value, errors_detected: errors, correction_iterations: iterations };
            }
            for (s, d) in detected.iter().enumerate() {
                inject[s] |= d & active;
            }
            let mut bits = active;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                iters[lane] += 1;
                bits &= bits - 1;
            }
        }
    }

    /// One bit-sliced combinational evaluation: the 64-lane counterpart
    /// of `evaluate`, with each sub-adder window summed by an exact
    /// bit-sliced ripple and the detection condition computed as a lane
    /// mask `prev_carry_out & propagate(P window) & !injected`.
    fn evaluate_x64(&self, a: &[u64], b: &[u64], inject: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let r = self.r;
        let p = self.p;
        let l = self.l();
        let k = self.sub_adder_count();
        let plane = |planes: &[u64], i: usize| planes.get(i).copied().unwrap_or(0);

        let mut sum = vec![0u64; self.n + 1];
        let mut detected = vec![0u64; k];
        let mut window = vec![0u64; l];
        let mut prev_carry_out = 0u64;

        for (s, d) in detected.iter_mut().enumerate() {
            let lo = s * r;
            let mut carry = inject[s];
            for (i, w) in window.iter_mut().enumerate() {
                let ai = plane(a, lo + i);
                let bi = plane(b, lo + i);
                let axb = ai ^ bi;
                *w = axb ^ carry;
                carry = (ai & bi) | (axb & carry);
            }
            let carry_out = carry;

            if s == 0 {
                sum[..l].copy_from_slice(&window);
            } else {
                let mut prop = u64::MAX;
                for i in 0..p {
                    prop &= plane(a, lo + i) ^ plane(b, lo + i);
                }
                *d = prev_carry_out & prop & !inject[s];
                sum[lo + p..lo + p + r].copy_from_slice(&window[p..p + r]);
            }
            prev_carry_out = carry_out;
        }
        sum[self.n] = prev_carry_out;
        (sum, detected)
    }

    /// Like [`GeArAdder::add`], but also returns the bit offsets at which
    /// the detectors flagged a missing carry (offset `s·R + P` for each
    /// detected sub-adder `s`). These detection signals are what the
    /// consolidated error correction unit (`xlac-accel::cec`) consumes
    /// instead of the per-adder recovery stage.
    #[must_use]
    pub fn add_flagged(&self, a: u64, b: u64) -> (AddOutcome, Vec<usize>) {
        let a = bits::truncate(a, self.n);
        let b = bits::truncate(b, self.n);
        let inject = vec![false; self.sub_adder_count()];
        let (value, detected) = self.evaluate(a, b, &inject);
        let offsets: Vec<usize> = detected
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(s, _)| s * self.r + self.p)
            .collect();
        (
            AddOutcome { value, errors_detected: offsets.len(), correction_iterations: 0 },
            offsets,
        )
    }

    /// FPGA area model in Virtex-6 style LUTs: each `L`-bit sub-adder maps
    /// to `L` carry-chain LUTs, so the total is `k · L` (the Table IV area
    /// column's model — see DESIGN.md for the substitution note).
    #[must_use]
    pub fn lut_area(&self) -> usize {
        self.sub_adder_count() * self.l()
    }

    /// The exact static worst-case error: `Σ_{s=1}^{k−1} 2^{s·R+P}`.
    ///
    /// Writing sub-adder `s`'s window sum as `W_s` and the true carry into
    /// bit `s·R` as `c_s`, the result error telescopes to
    /// `Σ_s 2^{s·R+P}·(1[Z_s] − 1[wrap_{s−1}])` where `Z_s` is the missed
    /// carry event and a wrap of window `s−1`'s result field forces
    /// `Z_s = 1` — so every net term is `0` or `+2^{s·R+P}`. The sum over
    /// all sections is therefore a sound (and attained) worst case, and
    /// the approximate sum never exceeds the exact one. The full argument
    /// is spelled out in DESIGN.md's static-analysis section.
    #[must_use]
    pub fn worst_case_error(&self) -> u64 {
        (1..self.sub_adder_count()).map(|s| 1u64 << (s * self.r + self.p)).sum()
    }
}

impl AdderX64 for GeArAdder {
    fn add_x64(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        GeArAdder::add_x64(self, a, b).value
    }
}

impl Adder for GeArAdder {
    fn width(&self) -> usize {
        self.n
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        GeArAdder::add(self, a, b).value
    }

    fn name(&self) -> String {
        format!("GeAr(N={},R={},P={})", self.n, self.r, self.p)
    }

    fn hw_cost(&self) -> HwCost {
        // k parallel L-bit ripple chains: areas/powers add, delay is one
        // L-bit chain (the parallelism is the design's point).
        let fa = FullAdderKind::Accurate.hw_cost();
        let chain = fa * self.l() as f64;
        let mut cost = HwCost::ZERO;
        for _ in 0..self.sub_adder_count() {
            cost = cost.parallel(chain);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(n: usize, a: u64, b: u64) -> u64 {
        bits::truncate(a, n) + bits::truncate(b, n)
    }

    #[test]
    fn paper_example_configuration() {
        let g = GeArAdder::new(12, 4, 4).unwrap();
        assert_eq!(g.l(), 8);
        assert_eq!(g.sub_adder_count(), 2);
        assert_eq!(g.sub_adder_windows(), vec![(0, 8), (4, 12)]);
    }

    #[test]
    fn validation_rejects_misaligned_configs() {
        assert!(GeArAdder::new(12, 5, 4).is_err()); // (12-9) % 5 != 0
        assert!(GeArAdder::new(8, 0, 4).is_err()); // R = 0
        assert!(GeArAdder::new(8, 4, 8).is_err()); // L > N
        assert!(GeArAdder::new(0, 1, 0).is_err());
        assert!(GeArAdder::new(64, 1, 0).is_err());
    }

    #[test]
    fn full_length_sub_adder_is_exact() {
        // L = N → single sub-adder → always exact.
        let g = GeArAdder::new(12, 4, 8).unwrap();
        for (a, b) in [(0xFFFu64, 0xFFFu64), (0x800, 0x800), (123, 456)] {
            let out = g.add(a, b);
            assert_eq!(out.value, exact(12, a, b));
            assert_eq!(out.errors_detected, 0);
        }
    }

    #[test]
    fn short_carry_chains_are_exact() {
        let g = GeArAdder::new(12, 4, 4).unwrap();
        // No carry crosses bit 7 with these operands.
        let out = g.add(0x00F, 0x001);
        assert_eq!(out.value, 0x010);
        assert_eq!(out.errors_detected, 0);
    }

    #[test]
    fn long_propagation_errs_and_is_detected() {
        let g = GeArAdder::new(12, 4, 4).unwrap();
        // a + b requires a carry generated at bit 0 to propagate to bit 8:
        // the P = 4 window [4, 8) is all-propagate and sub-adder 2 misses
        // the carry generated in [0, 4).
        let a = 0b0000_1111_1111u64;
        let b = 0b0000_0000_0001u64;
        // True: 0b0001_0000_0000. Window of sub-adder 2 = bits [4, 12):
        // 0b0000_1111 + 0 = 0b0000_1111 → result bits [8, 12) = 0000 ✓ but
        // the true bits are 0001 → error.
        let out = g.add(a, b);
        assert_ne!(out.value, exact(12, a, b));
        assert_eq!(out.errors_detected, 1);
        // Correction recovers the exact sum in one pass.
        let fixed = g.add_with_correction(a, b, usize::MAX);
        assert_eq!(fixed.value, exact(12, a, b));
        assert_eq!(fixed.errors_detected, 0);
        assert_eq!(fixed.correction_iterations, 1);
    }

    #[test]
    fn correction_always_reaches_exactness() {
        // Exhaustive over a small configuration: N=6, R=1, P=1, k=5.
        let g = GeArAdder::new(6, 1, 1).unwrap();
        for a in 0u64..64 {
            for b in 0u64..64 {
                let out = g.add_with_correction(a, b, usize::MAX);
                assert_eq!(out.value, exact(6, a, b), "a={a} b={b}");
                assert!(out.correction_iterations < g.sub_adder_count());
            }
        }
    }

    #[test]
    fn uncorrected_error_is_always_detected() {
        // Detection must be sound: whenever the approximate value differs
        // from the exact one, at least one detector fired.
        let g = GeArAdder::new(8, 2, 2).unwrap();
        for a in 0u64..256 {
            for b in 0u64..256 {
                let out = g.add(a, b);
                if out.value != exact(8, a, b) {
                    assert!(out.errors_detected > 0, "undetected error at {a}+{b}");
                }
            }
        }
    }

    #[test]
    fn correction_iterations_are_bounded_by_k_minus_1() {
        let g = GeArAdder::new(12, 2, 2).unwrap(); // k = 5
        let k = g.sub_adder_count();
        for a in (0u64..4096).step_by(37) {
            for b in (0u64..4096).step_by(41) {
                let out = g.add_with_correction(a, b, usize::MAX);
                assert!(out.correction_iterations < k);
                assert_eq!(out.value, exact(12, a, b));
            }
        }
    }

    #[test]
    fn limited_iterations_progress_and_terminate() {
        // Progressive correction is *not* monotone in the error magnitude:
        // fixing sub-adder s can wrap its result bits (e.g. 11 → 00) and
        // move the carry into sub-adder s+1's domain, which only the next
        // pass repairs. What must hold: zero passes equals the plain
        // approximate add, and enough passes reach exactness.
        let g = GeArAdder::new(12, 2, 2).unwrap();
        let (a, b) = (0b1111_1111_1111u64, 1u64);
        let none = g.add_with_correction(a, b, 0);
        assert_eq!(none.value, g.add(a, b).value);
        assert_eq!(none.correction_iterations, 0);
        let full = g.add_with_correction(a, b, g.sub_adder_count());
        assert_eq!(full.value, exact(12, a, b));
        assert_eq!(full.errors_detected, 0);
        // Each pass consumes at least one pending detection, so the pass
        // count is bounded by k - 1.
        assert!(full.correction_iterations < g.sub_adder_count());
    }

    #[test]
    fn soa_adder_constructors() {
        let aca1 = GeArAdder::aca_i(16, 4).unwrap();
        assert_eq!((aca1.r(), aca1.p()), (1, 3));
        let aca2 = GeArAdder::aca_ii(16, 8).unwrap();
        assert_eq!((aca2.r(), aca2.p()), (4, 4));
        let eta = GeArAdder::etaii(16, 4).unwrap();
        assert_eq!((eta.r(), eta.p()), (4, 4));
        let gda = GeArAdder::gda(16, 2, 4).unwrap();
        assert_eq!((gda.r(), gda.p()), (2, 4));
        assert!(GeArAdder::gda(16, 4, 2).is_err()); // (16-6) % 4 != 0
        assert!(GeArAdder::aca_ii(16, 5).is_err());
        assert!(GeArAdder::aca_i(16, 0).is_err());
    }

    #[test]
    fn lut_area_model() {
        // N=11, R=1, P=9: L=10, k=2 → 20 LUTs.
        let g = GeArAdder::new(11, 1, 9).unwrap();
        assert_eq!(g.lut_area(), 20);
        // N=11, R=3, P=5: L=8, k=2 → 16 LUTs.
        let g = GeArAdder::new(11, 3, 5).unwrap();
        assert_eq!(g.lut_area(), 16);
    }

    #[test]
    fn delay_is_sublinear_in_n() {
        let gear = GeArAdder::new(32, 4, 4).unwrap();
        let exact = crate::ripple::RippleCarryAdder::accurate(32);
        use crate::adder::Adder;
        assert!(gear.hw_cost().delay < exact.hw_cost().delay);
        // But GeAr pays area for the overlapping windows.
        assert!(gear.hw_cost().area_ge > exact.hw_cost().area_ge);
    }

    #[test]
    fn adder_trait_returns_uncorrected_value() {
        let g = GeArAdder::new(12, 4, 4).unwrap();
        let (a, b) = (0b0000_1111_1111u64, 1u64);
        assert_eq!(Adder::add(&g, a, b), g.add(a, b).value);
        assert_eq!(g.name(), "GeAr(N=12,R=4,P=4)");
    }

    #[test]
    fn p_zero_blocks_never_predict() {
        // R=4, P=0: plain disjoint 4-bit blocks; any carry across a block
        // boundary is lost.
        let g = GeArAdder::new(8, 4, 0).unwrap();
        let out = g.add(0x0F, 0x01);
        assert_eq!(out.value, 0x00); // carry out of low block dropped
        assert_eq!(out.errors_detected, 1);
        let fixed = g.add_with_correction(0x0F, 0x01, usize::MAX);
        assert_eq!(fixed.value, 0x10);
    }

    #[test]
    fn error_magnitude_is_structured() {
        // GeAr errors are always *underestimates* (a missing carry) whose
        // magnitude is a sum of powers of two at sub-adder result offsets.
        let g = GeArAdder::new(12, 4, 4).unwrap();
        for a in (0u64..4096).step_by(19) {
            for b in (0u64..4096).step_by(23) {
                let out = g.add(a, b);
                let ex = exact(12, a, b);
                assert!(out.value <= ex, "approximate never exceeds exact");
            }
        }
    }

    #[test]
    fn worst_case_error_is_exhaustively_sound() {
        // For every valid 8-bit configuration the static worst case
        // upper-bounds the exhaustive maximum. With disjoint sub-adders
        // (P = 0) no wrap cancellation is possible and the bound is
        // attained exactly.
        for r in 1..8usize {
            for p in 0..8usize {
                let l = r + p;
                if l >= 8 || !(8 - l).is_multiple_of(r) {
                    continue;
                }
                let g = GeArAdder::new(8, r, p).unwrap();
                let wce = g.worst_case_error();
                let mut observed = 0u64;
                for a in 0u64..256 {
                    for b in 0u64..256 {
                        observed = observed.max(g.add(a, b).value.abs_diff(a + b));
                    }
                }
                assert!(observed <= wce, "R{r}P{p}: observed {observed} > bound {wce}");
                if p == 0 {
                    assert_eq!(observed, wce, "R{r}P0: disjoint bound should be attained");
                }
            }
        }
    }

    #[test]
    fn worst_case_error_formula() {
        // N=12, R=4, P=4 → two sub-adders, one boundary: 2^(4+4) = 256.
        assert_eq!(GeArAdder::new(12, 4, 4).unwrap().worst_case_error(), 256);
        // Single sub-adder (L = N) is exact.
        assert_eq!(GeArAdder::new(8, 4, 4).unwrap().worst_case_error(), 0);
        // N=8, R=2, P=2: sub-adders at s = 1, 2: 2^4 + 2^6.
        assert_eq!(GeArAdder::new(8, 2, 2).unwrap().worst_case_error(), 16 + 64);
    }
}
