//! Structural gate-level netlists of the multi-bit adders.
//!
//! The cost figures elsewhere in this crate compose per-cell
//! characterizations; this module closes the loop with the EDA substrate:
//! it *elaborates* a ripple-carry or GeAr adder into one flat gate netlist
//! (by inlining the 1-bit cell netlists), so the design can be
//! functionally verified bit-for-bit against the behavioural model
//! (ModelSim-style), characterized through the same toggle-counting flow
//! as the 1-bit cells, and exported to Verilog.
//!
//! Port convention: inputs `a0..a(N-1), b0..b(N-1)` (operand A in inputs
//! `0..N`), outputs `s0..sN` (sum LSB-first, carry-out last).
//!
//! # Example
//!
//! ```
//! use xlac_adders::hw::ripple_netlist;
//! use xlac_adders::{FullAdderKind, RippleCarryAdder, Adder};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let rca = RippleCarryAdder::with_approx_lsbs(4, FullAdderKind::Apx3, 2)?;
//! let nl = ripple_netlist(&rca);
//! // The netlist computes exactly what the behavioural model computes.
//! let (a, b) = (0b1011u64, 0b0110u64);
//! let packed = a | (b << 4);
//! assert_eq!(nl.eval(packed), rca.add(a, b));
//! # Ok(())
//! # }
//! ```

use crate::gear::GeArAdder;
use crate::ripple::RippleCarryAdder;
use xlac_logic::{Netlist, NetlistBuilder, Signal};

/// Elaborates a ripple-carry adder into a flat gate netlist
/// (`2N` inputs, `N + 1` outputs).
#[must_use]
pub fn ripple_netlist(adder: &RippleCarryAdder) -> Netlist {
    use crate::adder::Adder;
    let n = adder.width();
    let mut b = NetlistBuilder::new(adder.name(), 2 * n);
    let mut carry: Signal = b.constant(false);
    let mut sums = Vec::with_capacity(n + 1);
    for (i, cell) in adder.cells().iter().enumerate() {
        let fa = cell.structural_netlist();
        let outs = b.inline(&fa, &[Signal::Input(i), Signal::Input(n + i), carry]);
        sums.push(outs[0]);
        carry = outs[1];
    }
    for s in sums {
        b.output(s);
    }
    b.output(carry);
    b.finish().expect("ripple elaboration is well-formed")
}

/// Elaborates a GeAr adder (without the recovery stage) into a flat gate
/// netlist: `k` parallel accurate sub-adder chains with the paper's
/// result-bit selection (`2N` inputs, `N + 1` outputs).
#[must_use]
pub fn gear_netlist(adder: &GeArAdder) -> Netlist {
    use crate::adder::Adder;
    use crate::full_adder::FullAdderKind;
    let n = adder.n();
    let (r, p, l) = (adder.r(), adder.p(), adder.l());
    let k = adder.sub_adder_count();
    let fa = FullAdderKind::Accurate.structural_netlist();

    let mut b = NetlistBuilder::new(adder.name(), 2 * n);
    let mut result: Vec<Option<Signal>> = vec![None; n + 1];

    for s in 0..k {
        let lo = s * r;
        let mut carry: Signal = b.constant(false);
        for j in 0..l {
            let bit = lo + j;
            let outs = b.inline(&fa, &[Signal::Input(bit), Signal::Input(n + bit), carry]);
            carry = outs[1];
            // First sub-adder contributes all its bits; later sub-adders
            // only their R result bits above the P prediction window.
            if s == 0 || j >= p {
                result[bit] = Some(outs[0]);
            }
        }
        if s == k - 1 {
            result[n] = Some(carry);
        }
    }

    for bit in result {
        b.output(bit.expect("every output bit is driven"));
    }
    b.finish().expect("gear elaboration is well-formed")
}

/// Packs two `n`-bit operands into the flat input vector the elaborated
/// netlists expect (`a` in bits `0..n`, `b` in bits `n..2n`).
#[must_use]
pub fn pack_operands(a: u64, b: u64, n: usize) -> u64 {
    xlac_core::bits::truncate(a, n) | (xlac_core::bits::truncate(b, n) << n)
}

/// Elaborates an absolute-difference subtractor into a flat gate netlist:
/// `2N` inputs, `N + 1` outputs — `|a − b|` LSB-first, then the `a >= b`
/// (no-borrow) flag.
///
/// The structure mirrors [`crate::Subtractor::sub_x64`] stage for stage:
/// the (possibly approximate) ripple adder on `a + !b`, the exact `+1`
/// increment rippled across `N + 2` bit positions (the increment can
/// carry *past* the adder's carry-out), the no-borrow flag as the OR of
/// both top carry positions, and a conditional two's-complement negation
/// selected per lane by that flag.
#[must_use]
pub fn subtractor_netlist(sub: &crate::Subtractor<RippleCarryAdder>) -> Netlist {
    use xlac_logic::GateKind;
    let w = sub.width();
    let mut b = NetlistBuilder::new(sub.name(), 2 * w);
    let adder_nl = ripple_netlist(sub.adder());

    // a + !b through the approximate adder (w + 1 output bits).
    let mut fanin: Vec<Signal> = (0..w).map(Signal::Input).collect();
    for i in 0..w {
        fanin.push(b.gate(GateKind::Not, &[Signal::Input(w + i)]));
    }
    let raw = b.inline(&adder_nl, &fanin);

    // The +1 increment over w + 2 bit positions (carry-in of 1).
    let mut inc = Vec::with_capacity(w + 2);
    let mut carry = b.constant(true);
    for &r in raw.iter().take(w + 1) {
        inc.push(b.gate(GateKind::Xor2, &[r, carry]));
        carry = b.gate(GateKind::And2, &[r, carry]);
    }
    inc.push(carry);
    // No borrow when the increment reached bit w or bit w+1.
    let a_ge_b = b.gate(GateKind::Or2, &[inc[w], inc[w + 1]]);

    // Two's complement of the low word, for the borrow case.
    let mut neg = Vec::with_capacity(w);
    let mut c = b.constant(true);
    for &i in inc.iter().take(w) {
        let ni = b.gate(GateKind::Not, &[i]);
        neg.push(b.gate(GateKind::Xor2, &[ni, c]));
        c = b.gate(GateKind::And2, &[ni, c]);
    }

    // Magnitude: inc when a >= b, neg otherwise.
    for i in 0..w {
        let mag = b.gate(GateKind::Mux2, &[neg[i], inc[i], a_ge_b]);
        b.output(mag);
    }
    b.output(a_ge_b);
    b.finish().expect("subtractor elaboration is well-formed")
}

/// Elaborates GeAr's error-detection logic (the light-weight part of the
/// paper's EDC stage): one output per sub-adder boundary, asserted when
/// that sub-adder's prediction window is all-propagate **and** the
/// previous sub-adder generates a carry-out. `2N` inputs, `k − 1`
/// outputs (sub-adders `1..k`).
///
/// The detector re-derives each previous sub-adder's carry-out from the
/// operands with a generate/propagate chain, so it is a standalone
/// observer — exactly what the consolidated error correction unit (§6.1)
/// taps instead of per-adder recovery.
#[must_use]
pub fn gear_detector_netlist(adder: &GeArAdder) -> Netlist {
    use crate::adder::Adder;
    use xlac_logic::GateKind;
    let n = adder.n();
    let (r, p, l) = (adder.r(), adder.p(), adder.l());
    let k = adder.sub_adder_count();
    let mut b = NetlistBuilder::new(format!("{}_detector", adder.name()), 2 * n);

    let mut flags = Vec::with_capacity(k.saturating_sub(1));
    for s in 1..k {
        // Previous sub-adder's carry-out: g/p chain over its window with
        // carry-in 0.
        let prev_lo = (s - 1) * r;
        let mut carry: Signal = b.constant(false);
        for j in 0..l {
            let bit = prev_lo + j;
            let g = b.gate(GateKind::And2, &[Signal::Input(bit), Signal::Input(n + bit)]);
            let pr = b.gate(GateKind::Xor2, &[Signal::Input(bit), Signal::Input(n + bit)]);
            let pc = b.gate(GateKind::And2, &[pr, carry]);
            carry = b.gate(GateKind::Or2, &[g, pc]);
        }
        // This sub-adder's P prediction bits all propagate.
        let lo = s * r;
        let props: Vec<Signal> = (0..p)
            .map(|j| {
                let bit = lo + j;
                b.gate(GateKind::Xor2, &[Signal::Input(bit), Signal::Input(n + bit)])
            })
            .collect();
        let all_prop = b.tree(GateKind::And2, &props);
        let flag = b.gate(GateKind::And2, &[carry, all_prop]);
        flags.push(flag);
    }
    for f in flags {
        b.output(f);
    }
    b.finish().expect("detector elaboration is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::Adder;
    use crate::full_adder::FullAdderKind;
    use xlac_logic::synth::characterize;

    #[test]
    fn accurate_ripple_netlist_is_exhaustively_equivalent() {
        let rca = RippleCarryAdder::accurate(6);
        let nl = ripple_netlist(&rca);
        assert_eq!(nl.n_inputs(), 12);
        assert_eq!(nl.n_outputs(), 7);
        for a in 0u64..64 {
            for b in 0u64..64 {
                assert_eq!(nl.eval(pack_operands(a, b, 6)), a + b, "{a}+{b}");
            }
        }
    }

    #[test]
    fn approximate_ripple_netlists_match_behavioural_models() {
        for kind in FullAdderKind::APPROXIMATE {
            let rca = RippleCarryAdder::with_approx_lsbs(6, kind, 3).unwrap();
            let nl = ripple_netlist(&rca);
            for a in 0u64..64 {
                for b in 0u64..64 {
                    assert_eq!(
                        nl.eval(pack_operands(a, b, 6)),
                        rca.add(a, b),
                        "{kind}: {a}+{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn gear_netlist_matches_behavioural_model() {
        for (n, r, p) in [(8usize, 2usize, 2usize), (8, 4, 0), (9, 3, 3), (12, 4, 4)] {
            let gear = GeArAdder::new(n, r, p).unwrap();
            let nl = gear_netlist(&gear);
            assert_eq!(nl.n_outputs(), n + 1);
            let step = if n <= 9 { 1 } else { 7 };
            for a in (0u64..(1 << n)).step_by(step) {
                for b in (0u64..(1 << n)).step_by(step * 3 + 1) {
                    assert_eq!(
                        nl.eval(pack_operands(a, b, n)),
                        gear.add(a, b).value,
                        "GeAr({n},{r},{p}): {a}+{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn elaborated_area_matches_composed_cost_model() {
        // The composed model sums per-cell areas; elaboration inlines the
        // same cells — areas must agree exactly.
        let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx3, 4).unwrap();
        let nl = ripple_netlist(&rca);
        let composed = rca.hw_cost();
        let measured = characterize(&nl, 2048, 0x11);
        assert!(
            (measured.area_ge - composed.area_ge).abs() < 1e-9,
            "area: flow {} vs composed {}",
            measured.area_ge,
            composed.area_ge
        );
    }

    #[test]
    fn gear_netlist_area_scales_with_sub_adder_overlap() {
        let lean = gear_netlist(&GeArAdder::new(12, 4, 0).unwrap()); // k=3, L=4
        let rich = gear_netlist(&GeArAdder::new(12, 4, 4).unwrap()); // k=2, L=8
        // Total FA cells: 3*4 = 12 vs 2*8 = 16.
        assert!(rich.area_ge() > lean.area_ge());
    }

    #[test]
    fn netlists_export_to_verilog() {
        let rca = RippleCarryAdder::accurate(4);
        let v = xlac_logic::verilog::to_verilog(&ripple_netlist(&rca));
        assert!(v.contains("module RCA_N_4_"));
        assert!(v.contains("endmodule"));
        let gear = GeArAdder::new(8, 2, 2).unwrap();
        let v = xlac_logic::verilog::to_verilog(&gear_netlist(&gear));
        assert!(v.contains("module GeAr_N_8_R_2_P_2_"));
    }

    #[test]
    fn detector_netlist_matches_behavioural_flags() {
        for (n, r, p) in [(8usize, 2usize, 2usize), (12, 4, 4), (9, 3, 3)] {
            let gear = GeArAdder::new(n, r, p).unwrap();
            let det = gear_detector_netlist(&gear);
            assert_eq!(det.n_outputs(), gear.sub_adder_count() - 1);
            let step = if n <= 9 { 1 } else { 5 };
            for a in (0u64..(1 << n)).step_by(step) {
                for b in (0u64..(1 << n)).step_by(step * 2 + 1) {
                    let (_, offsets) = gear.add_flagged(a, b);
                    let hw = det.eval(pack_operands(a, b, n));
                    for s in 1..gear.sub_adder_count() {
                        let expect = offsets.contains(&(s * r + p));
                        let got = (hw >> (s - 1)) & 1 == 1;
                        assert_eq!(got, expect, "GeAr({n},{r},{p}) s={s} a={a} b={b}");
                    }
                }
            }
        }
    }

    #[test]
    fn detector_is_cheap_relative_to_the_adder() {
        let gear = GeArAdder::new(12, 4, 4).unwrap();
        let adder_area = gear_netlist(&gear).area_ge();
        let det_area = gear_detector_netlist(&gear).area_ge();
        assert!(det_area < adder_area, "detector {det_area} vs adder {adder_area}");
    }

    #[test]
    fn subtractor_netlist_is_exhaustively_equivalent() {
        use crate::Subtractor;
        for (kind, lsbs) in
            [(FullAdderKind::Accurate, 0), (FullAdderKind::Apx2, 3), (FullAdderKind::Apx5, 2)]
        {
            let sub = Subtractor::new(RippleCarryAdder::with_approx_lsbs(6, kind, lsbs).unwrap());
            let nl = subtractor_netlist(&sub);
            assert_eq!(nl.n_inputs(), 12);
            assert_eq!(nl.n_outputs(), 7);
            for a in 0u64..64 {
                for b in 0u64..64 {
                    let (mag, ge) = sub.sub(a, b);
                    let expect = mag | (u64::from(ge) << 6);
                    assert_eq!(nl.eval(pack_operands(a, b, 6)), expect, "{kind}: {a}-{b}");
                }
            }
        }
    }

    #[test]
    fn subtractor_netlist_matches_x64_on_random_lanes() {
        use crate::Subtractor;
        use xlac_core::lanes::{from_planes, to_planes, LANES};
        use xlac_core::rng::{DefaultRng, Rng};
        let sub =
            Subtractor::new(RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx3, 4).unwrap());
        let nl = subtractor_netlist(&sub);
        let mut rng = DefaultRng::seed_from_u64(0x5B);
        let mut a = [0u64; LANES];
        let mut b = [0u64; LANES];
        rng.fill_u64(&mut a);
        rng.fill_u64(&mut b);
        let a = a.map(|v| v & 0xFF);
        let b = b.map(|v| v & 0xFF);
        let (mag, a_ge_b) = sub.sub_x64(&to_planes(&a, 8), &to_planes(&b, 8));
        let mags = from_planes(&mag);
        for j in 0..LANES {
            let hw = nl.eval(pack_operands(a[j], b[j], 8));
            assert_eq!(hw & 0xFF, mags[j], "lane {j}");
            assert_eq!((hw >> 8) & 1, (a_ge_b >> j) & 1, "lane {j} flag");
        }
    }

    #[test]
    fn apx5_lsbs_elaborate_to_pure_wiring() {
        // ApxFA5 cells contribute zero gates: the elaborated 4-bit adder
        // with 2 ApxFA5 LSBs has exactly 2 accurate cells' worth of gates.
        let rca = RippleCarryAdder::with_approx_lsbs(4, FullAdderKind::Apx5, 2).unwrap();
        let nl = ripple_netlist(&rca);
        let acc_cell_gates = FullAdderKind::Accurate.structural_netlist().gate_count();
        assert_eq!(nl.gate_count(), 2 * acc_cell_gates);
    }
}
