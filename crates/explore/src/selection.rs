//! Constraint-based configuration selection (the Fig.4 queries).
//!
//! The paper's text walks two selections over the 11-bit GeAr space:
//! "for the constraint of maximum accuracy percentage, GeAr (R = 1, P = 9)
//! can be selected", and "to find a low-area adder configuration with at
//! least 90 % accuracy, GeAr … R = 3 and P = 5". These functions implement
//! exactly those queries over an enumerated design space.
//!
//! # Example
//!
//! ```
//! use xlac_explore::{enumerate_gear_space, max_accuracy, min_area_with_accuracy};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let space = enumerate_gear_space(11)?;
//! assert_eq!(max_accuracy(&space)?.label(), "R1P9");
//! let pick = min_area_with_accuracy(&space, 90.0)?;
//! assert!(pick.accuracy_percent >= 90.0);
//! # Ok(())
//! # }
//! ```

use crate::gear_space::GearDesignPoint;
use xlac_core::error::{Result, XlacError};

/// The configuration with the highest model accuracy (ties broken toward
/// smaller LUT area, then smaller R).
///
/// # Errors
///
/// Returns [`XlacError::EmptyInput`] for an empty space.
pub fn max_accuracy(space: &[GearDesignPoint]) -> Result<&GearDesignPoint> {
    space
        .iter()
        .max_by(|a, b| {
            a.accuracy_percent
                .total_cmp(&b.accuracy_percent)
                .then(b.lut_area.cmp(&a.lut_area).reverse())
                .then(b.r.cmp(&a.r))
        })
        .ok_or(XlacError::EmptyInput("design space"))
}

/// The minimum-LUT-area configuration whose accuracy meets `floor_percent`
/// (ties broken toward higher accuracy).
///
/// # Errors
///
/// Returns [`XlacError::EmptyInput`] for an empty space or
/// [`XlacError::InvalidConfiguration`] when no point meets the floor.
pub fn min_area_with_accuracy(
    space: &[GearDesignPoint],
    floor_percent: f64,
) -> Result<&GearDesignPoint> {
    if space.is_empty() {
        return Err(XlacError::EmptyInput("design space"));
    }
    space
        .iter()
        .filter(|pt| pt.accuracy_percent >= floor_percent)
        .min_by(|a, b| {
            a.lut_area
                .cmp(&b.lut_area)
                .then(b.accuracy_percent.total_cmp(&a.accuracy_percent))
        })
        .ok_or_else(|| {
            XlacError::InvalidConfiguration(format!(
                "no configuration reaches {floor_percent}% accuracy"
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gear_space::enumerate_gear_space;

    #[test]
    fn paper_max_accuracy_pick() {
        let space = enumerate_gear_space(11).unwrap();
        let best = max_accuracy(&space).unwrap();
        assert_eq!((best.r, best.p), (1, 9));
    }

    #[test]
    fn paper_min_area_pick_is_feasible_and_frugal() {
        let space = enumerate_gear_space(11).unwrap();
        let pick = min_area_with_accuracy(&space, 90.0).unwrap();
        assert!(pick.accuracy_percent >= 90.0);
        // No cheaper feasible point exists.
        for pt in &space {
            if pt.accuracy_percent >= 90.0 {
                assert!(pt.lut_area >= pick.lut_area);
            }
        }
    }

    #[test]
    fn impossible_floor_is_an_error() {
        let space = enumerate_gear_space(11).unwrap();
        // Approximate multi-sub-adder designs never reach exactly 100 %.
        assert!(min_area_with_accuracy(&space, 100.0).is_err());
    }

    #[test]
    fn empty_space_is_an_error() {
        assert!(max_accuracy(&[]).is_err());
        assert!(min_area_with_accuracy(&[], 50.0).is_err());
    }

    #[test]
    fn floor_zero_returns_global_area_minimum() {
        let space = enumerate_gear_space(11).unwrap();
        let pick = min_area_with_accuracy(&space, 0.0).unwrap();
        let min_area = space.iter().map(|pt| pt.lut_area).min().unwrap();
        assert_eq!(pick.lut_area, min_area);
    }
}
