//! Enumeration of the GeAr `(R, P)` configuration space (Table IV).
//!
//! For an `N`-bit GeAr adder, a configuration is valid when `R ≥ 1`,
//! `P ≥ 0`, `R + P ≤ N` and `(N − R − P)` is a multiple of `R`. Each point
//! is scored with the **analytical error model** (no simulation — the
//! paper's selling point) and the LUT area model.
//!
//! # Example
//!
//! ```
//! use xlac_explore::gear_space::enumerate_gear_space;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let space = enumerate_gear_space(11)?;
//! // Multi-sub-adder points only (k = 1 would be an exact adder).
//! assert!(space.iter().all(|pt| pt.sub_adders >= 2));
//! # Ok(())
//! # }
//! ```

use xlac_adders::{Adder, GeArAdder, GearErrorModel};
use xlac_analysis::symbolic::compile::interleaved_operand_vars;
use xlac_analysis::symbolic::{exact_metrics, twins, Bdd};
use xlac_core::error::Result;
use xlac_obs::{obs_count, obs_span};

/// One scored GeAr configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GearDesignPoint {
    /// Operand width.
    pub n: usize,
    /// Result bits per sub-adder.
    pub r: usize,
    /// Prediction bits per sub-adder.
    pub p: usize,
    /// Number of sub-adders.
    pub sub_adders: usize,
    /// Accuracy percentage from the exact analytical error model.
    pub accuracy_percent: f64,
    /// FPGA area in LUTs (the Table IV area model).
    pub lut_area: usize,
    /// Normalized ASIC delay (one sub-adder ripple chain).
    pub delay: f64,
    /// Static worst-case error bound from `xlac-analysis` (a sound
    /// ceiling on any error the adder can produce).
    pub wce_bound: u64,
    /// The *exact* worst-case error proven by the symbolic BDD engine,
    /// where the width permits (`2n ≤ 16` input bits); `None` for the
    /// wider Table IV geometries, which keep the analytic bound.
    pub wce_exact: Option<u64>,
    /// Static bound on the mean error distance under uniform inputs.
    pub mean_error_bound: f64,
}

impl GearDesignPoint {
    /// The sharpest available worst-case ceiling: the proven exact WCE
    /// when the symbolic engine reached this width, the analytic bound
    /// otherwise. Always sound, so selections on it are safe.
    #[must_use]
    pub fn wce_ceiling(&self) -> u64 {
        self.wce_exact.unwrap_or(self.wce_bound)
    }

    /// A short label like `"R1P9"` (the Table IV row naming).
    #[must_use]
    pub fn label(&self) -> String {
        format!("R{}P{}", self.r, self.p)
    }

    /// Reconstructs the adder for this point.
    ///
    /// # Errors
    ///
    /// Never fails for points produced by [`enumerate_gear_space`].
    pub fn adder(&self) -> Result<GeArAdder> {
        GeArAdder::new(self.n, self.r, self.p)
    }
}

/// The provable worst-case error of the plain (uncorrected) GeAr adder,
/// from the symbolic BDD engine, for geometries whose `2n` input bits
/// stay within exact reach.
fn exact_gear_wce(gear: &GeArAdder) -> Option<u64> {
    let n = gear.n();
    if 2 * n > 16 {
        return None;
    }
    let mut bdd = Bdd::new();
    let (a, b) = interleaved_operand_vars(&mut bdd, n);
    let approx = twins::gear_adder(&mut bdd, gear, &a, &b, 0);
    let exact = twins::add_exact(&mut bdd, &a, &b, xlac_analysis::symbolic::FALSE);
    let wce = exact_metrics(&mut bdd, &approx, &exact, 2 * n).worst_case_error;
    Some(u64::try_from(wce).expect("n-bit adder error fits in u64"))
}

/// Enumerates and scores every valid multi-sub-adder `(R, P)` point for an
/// `N`-bit GeAr adder, ordered by `(R, P)`.
///
/// Configurations with a single sub-adder (`L = N`) are excluded — they
/// are exact adders, not approximate designs (the paper's Table IV also
/// omits them).
///
/// # Errors
///
/// Propagates invalid-width errors from the adder constructor.
pub fn enumerate_gear_space(n: usize) -> Result<Vec<GearDesignPoint>> {
    let _span = obs_span!("explore.gear_space");
    let mut points = Vec::new();
    for r in 1..n {
        for p in 0..n {
            let l = r + p;
            if l >= n || !(n - l).is_multiple_of(r) {
                continue;
            }
            let gear = GeArAdder::new(n, r, p)?;
            let model = GearErrorModel::for_adder(&gear);
            points.push(GearDesignPoint {
                n,
                r,
                p,
                sub_adders: gear.sub_adder_count(),
                accuracy_percent: (1.0 - model.exact()) * 100.0,
                lut_area: gear.lut_area(),
                delay: gear.hw_cost().delay,
                wce_bound: gear.worst_case_error(),
                wce_exact: exact_gear_wce(&gear),
                mean_error_bound: model.mean_error_distance(),
            });
        }
    }
    obs_count!("explore.gear.configs", points.len() as u64);
    Ok(points)
}

/// A GeAr design point paired with Monte-Carlo-measured error statistics
/// from the bit-sliced simulation engine.
#[derive(Debug, Clone)]
pub struct MeasuredGearPoint {
    /// The analytically scored design point.
    pub point: GearDesignPoint,
    /// Measured accuracy percentage: `100 · (1 − error rate)` over the
    /// sweep — the empirical counterpart of
    /// [`GearDesignPoint::accuracy_percent`].
    pub measured_accuracy_percent: f64,
    /// Full measured error statistics.
    pub stats: xlac_core::metrics::ErrorStats,
}

/// Measures every point of [`enumerate_gear_space`] with a Monte-Carlo
/// sweep on the bit-sliced engine (`xlac-sim`): `trials` uniform operand
/// pairs per point, split deterministically across `threads` workers
/// (`0` → auto). Results are bitwise-identical for any thread count.
///
/// This is the simulation-backed validation of the Table IV analytical
/// accuracy column: `measured_accuracy_percent` converges on
/// `accuracy_percent` as `trials` grows.
///
/// # Errors
///
/// Propagates invalid-width errors from the adder constructor.
pub fn measure_gear_space(
    n: usize,
    trials: u64,
    seed: u64,
    threads: usize,
) -> Result<Vec<MeasuredGearPoint>> {
    let _span = obs_span!("explore.gear_measure");
    enumerate_gear_space(n)?
        .into_iter()
        .map(|point| {
            obs_count!("explore.gear.mc_trials", trials);
            let adder = point.adder()?;
            let opts = xlac_sim::SweepOptions::new(trials, seed).threads(threads);
            let stats = xlac_sim::gear_sweep(&adder, None, &opts).stats;
            Ok(MeasuredGearPoint {
                measured_accuracy_percent: 100.0 * (1.0 - stats.error_rate),
                point,
                stats,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_bit_space_matches_table_iv_structure() {
        let space = enumerate_gear_space(11).unwrap();
        // Every point validates and is unique.
        let mut labels: Vec<String> = space.iter().map(GearDesignPoint::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), space.len());
        // The text's flagship points exist.
        assert!(space.iter().any(|pt| pt.r == 1 && pt.p == 9));
        assert!(space.iter().any(|pt| pt.r == 3 && pt.p == 5));
        // R = 1 admits every P in 0..=9 (N−1−P always divisible by 1).
        let r1_count = space.iter().filter(|pt| pt.r == 1).count();
        assert_eq!(r1_count, 10);
    }

    #[test]
    fn accuracy_increases_with_p_at_fixed_r() {
        let space = enumerate_gear_space(11).unwrap();
        for r in 1..=3usize {
            let mut points: Vec<&GearDesignPoint> =
                space.iter().filter(|pt| pt.r == r).collect();
            points.sort_by_key(|pt| pt.p);
            for pair in points.windows(2) {
                assert!(
                    pair[1].accuracy_percent >= pair[0].accuracy_percent - 1e-9,
                    "R{r}: accuracy fell from P{} to P{}",
                    pair[0].p,
                    pair[1].p
                );
            }
        }
    }

    #[test]
    fn exact_wce_is_proven_and_sharp_at_eight_bits() {
        let space = enumerate_gear_space(8).unwrap();
        for pt in &space {
            let exact = pt.wce_exact.expect("8-bit GeAr is within exact reach");
            assert!(
                exact <= pt.wce_bound,
                "{}: exact {exact} above the analytic bound {}",
                pt.label(),
                pt.wce_bound
            );
            assert_eq!(pt.wce_ceiling(), exact);
            // The analytic formula is attained exactly for P = 0.
            if pt.p == 0 {
                assert_eq!(exact, pt.wce_bound, "{}: P=0 bound is tight", pt.label());
            }
        }
        // Prediction bits make the formula conservative somewhere.
        assert!(
            space.iter().any(|pt| pt.wce_exact.unwrap() < pt.wce_bound),
            "some P > 0 geometry must beat its analytic ceiling"
        );
    }

    #[test]
    fn wide_geometries_keep_the_analytic_bound() {
        let space = enumerate_gear_space(11).unwrap();
        for pt in &space {
            assert!(pt.wce_exact.is_none(), "{}: 22-input BDD not attempted", pt.label());
            assert_eq!(pt.wce_ceiling(), pt.wce_bound);
        }
    }

    #[test]
    fn accuracy_model_matches_simulation_on_a_sample() {
        let space = enumerate_gear_space(8).unwrap();
        for pt in &space {
            let model = GearErrorModel::for_adder(&pt.adder().unwrap());
            let truth = (1.0 - model.exhaustive()) * 100.0;
            assert!(
                (pt.accuracy_percent - truth).abs() < 1e-6,
                "{}: {} vs {}",
                pt.label(),
                pt.accuracy_percent,
                truth
            );
        }
    }

    #[test]
    fn measured_space_tracks_the_analytical_model() {
        let measured = measure_gear_space(8, 20_000, 0x6EA5, 0).unwrap();
        assert_eq!(measured.len(), enumerate_gear_space(8).unwrap().len());
        for m in &measured {
            assert_eq!(m.stats.samples, 20_000);
            // The analytical accuracy model is exact; 20k uniform trials
            // land within a few percentage points of it.
            assert!(
                (m.measured_accuracy_percent - m.point.accuracy_percent).abs() < 3.0,
                "{}: measured {} vs model {}",
                m.point.label(),
                m.measured_accuracy_percent,
                m.point.accuracy_percent
            );
        }
    }

    #[test]
    fn measured_space_is_thread_count_invariant() {
        let one = measure_gear_space(8, 4_096, 7, 1).unwrap();
        let eight = measure_gear_space(8, 4_096, 7, 8).unwrap();
        for (a, b) in one.iter().zip(&eight) {
            assert_eq!(a.stats, b.stats, "{}", a.point.label());
        }
    }

    #[test]
    fn lut_area_reflects_total_sub_adder_width() {
        // Area = k·L: overlap (P > 0) always costs more LUTs than a plain
        // N-bit chain, and the model is internally consistent.
        let space = enumerate_gear_space(11).unwrap();
        for pt in &space {
            assert_eq!(pt.lut_area, pt.sub_adders * (pt.r + pt.p));
            if pt.p > 0 {
                assert!(pt.lut_area > pt.n, "{}: overlap must cost extra", pt.label());
            }
        }
        // Disjoint blocks (P = 0) cost exactly N LUTs.
        for pt in space.iter().filter(|pt| pt.p == 0) {
            assert_eq!(pt.lut_area, pt.n, "{}", pt.label());
        }
    }

    #[test]
    fn excludes_exact_single_sub_adder_points() {
        for n in [8usize, 11, 16] {
            let space = enumerate_gear_space(n).unwrap();
            assert!(space.iter().all(|pt| pt.sub_adders >= 2), "N={n}");
            assert!(space.iter().all(|pt| pt.accuracy_percent < 100.0), "N={n}");
        }
    }

    #[test]
    fn static_bounds_are_sound_for_eight_bit_points() {
        // Exhaustively confirm the static WCE ceiling on every 8-bit point.
        let space = enumerate_gear_space(8).unwrap();
        for pt in &space {
            let gear = pt.adder().unwrap();
            let mut observed_max = 0u64;
            for a in 0..256u64 {
                for b in 0..256u64 {
                    let approx = Adder::add(&gear, a, b);
                    observed_max = observed_max.max((a + b).abs_diff(approx));
                }
            }
            assert!(
                observed_max <= pt.wce_bound,
                "{}: observed {observed_max} > bound {}",
                pt.label(),
                pt.wce_bound
            );
            assert!(pt.mean_error_bound >= 0.0, "{}", pt.label());
            // Exact points (none exist here, but keep the invariant honest):
            if pt.wce_bound == 0 {
                assert!((pt.accuracy_percent - 100.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn labels() {
        let space = enumerate_gear_space(11).unwrap();
        let pt = space.iter().find(|pt| pt.r == 3 && pt.p == 5).unwrap();
        assert_eq!(pt.label(), "R3P5");
    }
}
