//! Generic Pareto-frontier extraction.
//!
//! The Fig.7 methodology selects "a set of pareto-optimal points … in the
//! design space exploration process" before building multi-bit blocks.
//! [`pareto_frontier`] implements that step generically: given items and a
//! list of objective extractors (all minimized — negate a metric to
//! maximize it), it returns the non-dominated subset.
//!
//! # Example
//!
//! ```
//! use xlac_explore::pareto::pareto_frontier;
//!
//! // (area, error): minimize both.
//! let designs = [(4.0, 0.5), (2.0, 1.0), (3.0, 0.2), (5.0, 0.9)];
//! let frontier = pareto_frontier(&designs, &[&|d: &(f64, f64)| d.0, &|d| d.1]);
//! // (5.0, 0.9) is dominated by (3.0, 0.2) and (4.0, 0.5) is dominated
//! // by (3.0, 0.2) too.
//! assert_eq!(frontier.len(), 2);
//! ```

/// Extracts the Pareto-optimal subset of `items` under the given
/// objectives (all minimized). Returns references in the original order.
///
/// An item is dominated when some other item is **no worse on every**
/// objective and **strictly better on at least one**. Duplicate objective
/// vectors are all kept (none dominates the other).
pub fn pareto_frontier<'a, T>(items: &'a [T], objectives: &[&dyn Fn(&T) -> f64]) -> Vec<&'a T> {
    assert!(!objectives.is_empty(), "need at least one objective");
    let scores: Vec<Vec<f64>> =
        items.iter().map(|it| objectives.iter().map(|f| f(it)).collect()).collect();
    let dominates = |a: &[f64], b: &[f64]| -> bool {
        let no_worse = a.iter().zip(b).all(|(x, y)| x <= y);
        let better = a.iter().zip(b).any(|(x, y)| x < y);
        no_worse && better
    };
    items
        .iter()
        .enumerate()
        .filter(|(i, _)| !scores.iter().enumerate().any(|(j, s)| j != *i && dominates(s, &scores[*i])))
        .map(|(_, it)| it)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_objective_keeps_the_minimum_only() {
        let xs = [3.0f64, 1.0, 2.0, 1.0];
        let front = pareto_frontier(&xs, &[&|x: &f64| *x]);
        assert_eq!(front, vec![&1.0, &1.0]); // both minima survive
    }

    #[test]
    fn two_objectives_classic_case() {
        let pts = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)];
        let front = pareto_frontier(&pts, &[&|p: &(f64, f64)| p.0, &|p| p.1]);
        // (3.0, 4.0) is dominated by (2.0, 3.0).
        assert_eq!(front.len(), 3);
        assert!(!front.contains(&&(3.0, 4.0)));
    }

    #[test]
    fn all_non_dominated_survive() {
        let pts = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)];
        let front = pareto_frontier(&pts, &[&|p: &(f64, f64)| p.0, &|p| p.1]);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn frontier_is_mutually_non_dominated_and_covers_dominated_points() {
        use xlac_core::rng::{DefaultRng, Rng};
        let mut rng = DefaultRng::seed_from_u64(21);
        let pts: Vec<(f64, f64, f64)> =
            (0..200).map(|_| (rng.gen(), rng.gen(), rng.gen())).collect();
        type Objective3<'a> = &'a dyn Fn(&(f64, f64, f64)) -> f64;
        let objs: Vec<Objective3<'_>> =
            vec![&|p: &(f64, f64, f64)| p.0, &|p| p.1, &|p| p.2];
        let front = pareto_frontier(&pts, &objs);
        let dom = |a: &(f64, f64, f64), b: &(f64, f64, f64)| {
            a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
        };
        // Frontier members do not dominate each other.
        for a in &front {
            for b in &front {
                if !std::ptr::eq(*a, *b) {
                    assert!(!dom(a, b), "frontier member dominates another");
                }
            }
        }
        // Every excluded point is dominated by some frontier member.
        for p in &pts {
            if !front.iter().any(|f| std::ptr::eq(*f, p)) {
                assert!(front.iter().any(|f| dom(f, p)), "{p:?} excluded but undominated");
            }
        }
    }

    #[test]
    fn maximization_by_negation() {
        // Maximize accuracy = minimize −accuracy.
        let pts = [(3.0, 0.9), (5.0, 0.99), (20.0, 0.999)];
        let front = pareto_frontier(&pts, &[&|p: &(f64, f64)| p.0, &|p| -p.1]);
        assert_eq!(front.len(), 3); // a real trade-off curve: all survive
        // A point worse on both axes is pruned.
        let pts = [(3.0, 0.9), (5.0, 0.99), (10.0, 0.9)];
        let front = pareto_frontier(&pts, &[&|p: &(f64, f64)| p.0, &|p| -p.1]);
        assert_eq!(front.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one objective")]
    fn empty_objectives_panic() {
        let xs = [1.0f64];
        let objs: Vec<&dyn Fn(&f64) -> f64> = vec![];
        let _ = pareto_frontier(&xs, &objs);
    }
}
