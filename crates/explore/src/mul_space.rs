//! Enumeration of the approximate-multiplier design space (the Fig.6
//! axes as a searchable space).
//!
//! Section 5 builds multipliers along three independent axes: the
//! elementary 2×2 block, the partial-product summation mode, and (from
//! the truncation family) the number of eliminated low columns. This
//! module enumerates configurations across all three, characterizes each
//! ([`xlac_core::ComponentProfile`]) and hands them to the generic Pareto
//! machinery — the multiplier counterpart of [`crate::gear_space`].
//!
//! # Example
//!
//! ```
//! use xlac_explore::mul_space::enumerate_multiplier_space;
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let space = enumerate_multiplier_space(8, 20_000)?;
//! assert!(space.len() > 10);
//! // Every profile carries a cost and quality record.
//! assert!(space.iter().all(|p| p.cost.area_ge > 0.0));
//! # Ok(())
//! # }
//! ```

use xlac_adders::FullAdderKind;
use xlac_core::error::Result;
use xlac_core::metrics::{exhaustive_binary, sampled_binary, ErrorStats};
use xlac_core::ComponentProfile;
use xlac_multipliers::{
    Mul2x2Kind, Multiplier, RecursiveMultiplier, SumMode, TruncatedMultiplier, WallaceMultiplier,
};
use xlac_core::rng::DefaultRng;

fn quality<M: Multiplier>(m: &M, samples: u64) -> ErrorStats {
    let w = m.width();
    if 2 * w <= 16 {
        exhaustive_binary(w, w, |a, b| a * b, |a, b| m.mul(a, b))
    } else {
        let mut rng = DefaultRng::seed_from_u64(0x3113);
        sampled_binary(w, w, samples, &mut rng, |a, b| a * b, |a, b| m.mul(a, b))
    }
}

/// Enumerates and characterizes multiplier configurations at the given
/// operand width (power of two in `4..=16`):
///
/// * recursive multipliers: {accurate, SoA, ours} blocks ×
///   {accurate, ApxFA1/3/5 on 2 or 4 LSBs} summation,
/// * Wallace trees with 0/4/8 approximate columns per approximate cell,
/// * truncated multipliers dropping 0/2/4/6 columns, compensated or not.
///
/// `samples` bounds the Monte-Carlo effort for widths beyond exhaustive
/// reach.
///
/// # Errors
///
/// Propagates construction errors (invalid width).
pub fn enumerate_multiplier_space(width: usize, samples: u64) -> Result<Vec<ComponentProfile>> {
    let mut profiles = Vec::new();

    // Recursive family.
    let sum_modes = [
        SumMode::Accurate,
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx1, lsbs: 2 },
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx3, lsbs: 4 },
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx5, lsbs: 4 },
    ];
    for block in Mul2x2Kind::ALL {
        for sum in sum_modes {
            let m = RecursiveMultiplier::new(width, block, sum)?;
            profiles.push(ComponentProfile::new(m.name(), m.hw_cost(), quality(&m, samples)));
        }
    }

    // Wallace family (one exact baseline, then the approximate columns —
    // cols = 0 collapses to the same design for every cell kind).
    let exact_wallace = WallaceMultiplier::new(width, FullAdderKind::Accurate, 0)?;
    profiles.push(ComponentProfile::new(
        exact_wallace.name(),
        exact_wallace.hw_cost(),
        quality(&exact_wallace, samples),
    ));
    for kind in [FullAdderKind::Apx2, FullAdderKind::Apx4, FullAdderKind::Apx5] {
        for cols in [4usize, 8] {
            let m = WallaceMultiplier::new(width, kind, cols)?;
            profiles.push(ComponentProfile::new(m.name(), m.hw_cost(), quality(&m, samples)));
        }
    }

    // Truncation family.
    for dropped in [0usize, 2, 4, 6] {
        for compensated in [false, true] {
            if dropped == 0 && compensated {
                continue;
            }
            let m = TruncatedMultiplier::new(width, dropped, compensated)?;
            profiles.push(ComponentProfile::new(m.name(), m.hw_cost(), quality(&m, samples)));
        }
    }

    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto_frontier;

    #[test]
    fn space_has_the_three_families() {
        let space = enumerate_multiplier_space(8, 10_000).unwrap();
        assert!(space.iter().any(|p| p.name.starts_with("RecMul")));
        assert!(space.iter().any(|p| p.name.starts_with("Wallace")));
        assert!(space.iter().any(|p| p.name.starts_with("TruncMul")));
        // Names are unique.
        let mut names: Vec<&str> = space.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn exact_configurations_have_zero_error() {
        let space = enumerate_multiplier_space(8, 10_000).unwrap();
        for p in &space {
            let exactish = (p.name.contains("AccMul") && !p.name.contains("xApxFA"))
                || p.name == "Wallace(N=8)"
                || p.name == "TruncMul(N=8,D=0)";
            if exactish {
                assert!(p.quality.is_exact(), "{} should be exact", p.name);
            }
        }
    }

    #[test]
    fn pareto_frontier_spans_the_families() {
        let space = enumerate_multiplier_space(8, 10_000).unwrap();
        let frontier = pareto_frontier(
            &space,
            &[
                &|p: &ComponentProfile| p.cost.area_ge,
                &|p| p.quality.mean_relative_error,
            ],
        );
        assert!(frontier.len() >= 3, "a real trade-off curve");
        assert!(frontier.len() < space.len(), "something must be dominated");
        // An exact design anchors the quality end of the frontier.
        assert!(frontier.iter().any(|p| p.quality.is_exact()));
    }

    #[test]
    fn sixteen_bit_space_uses_sampling() {
        let space = enumerate_multiplier_space(16, 5_000).unwrap();
        // All sampled profiles saw the configured number of samples.
        let sampled = space.iter().find(|p| !p.quality.is_exact()).expect("approx exists");
        assert_eq!(sampled.quality.samples, 5_000);
    }
}
