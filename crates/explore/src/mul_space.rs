//! Enumeration of the approximate-multiplier design space (the Fig.6
//! axes as a searchable space).
//!
//! Section 5 builds multipliers along three independent axes: the
//! elementary 2×2 block, the partial-product summation mode, and (from
//! the truncation family) the number of eliminated low columns. This
//! module enumerates configurations across all three, characterizes each
//! ([`xlac_core::ComponentProfile`]) and hands them to the generic Pareto
//! machinery — the multiplier counterpart of [`crate::gear_space`].
//!
//! Since every configuration also has a *free* static error ceiling from
//! `xlac-analysis` — the exact worst-case error proven by the symbolic
//! BDD engine where the width permits, the conservative bound beyond
//! that — [`enumerate_multiplier_space_prefiltered`] prunes statically
//! dominated designs before spending any Monte-Carlo budget: simulation
//! only runs for members of the static `(area, wce-ceiling)` Pareto
//! frontier.
//!
//! # Example
//!
//! ```
//! use xlac_explore::mul_space::{
//!     enumerate_multiplier_space, enumerate_multiplier_space_prefiltered,
//! };
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let space = enumerate_multiplier_space(8, 20_000)?;
//! assert!(space.len() > 10);
//! // Every profile carries a cost and quality record.
//! assert!(space.iter().all(|p| p.cost.area_ge > 0.0));
//!
//! // The static pre-filter skips simulation for dominated designs.
//! let pre = enumerate_multiplier_space_prefiltered(8, 20_000)?;
//! assert_eq!(pre.evaluated.len() + pre.pruned.len(), space.len());
//! assert!(!pre.pruned.is_empty());
//! # Ok(())
//! # }
//! ```

use xlac_adders::FullAdderKind;
use xlac_analysis::bound::ErrorBound;
use xlac_analysis::components::{
    certified_wallace_bound, recursive_multiplier_bound, truncated_bound,
};
use xlac_analysis::symbolic::calculus::{
    recursive_calculus, truncated_calculus, wallace_calculus, CertifiedMetrics,
};
use xlac_analysis::symbolic::compile::interleaved_operand_vars;
use xlac_analysis::symbolic::{exact_metrics, twins, Bdd};
use xlac_core::characterization::HwCost;
use xlac_core::error::Result;
use xlac_core::metrics::{exhaustive_binary, ErrorStats};
use xlac_core::ComponentProfile;
use xlac_multipliers::{
    Mul2x2Kind, Multiplier, MultiplierX64, RecursiveMultiplier, SumMode, TruncatedMultiplier,
    WallaceMultiplier,
};
use xlac_multipliers::hw::wallace_netlist;
use xlac_obs::{obs_count, obs_span};
use xlac_sim::{compiled_pair_sweep, multiplier_sweep, CompiledProgram, SweepOptions};

/// One multiplier configuration, kept as its concrete family type so the
/// static bound can be computed without simulation at construction time.
enum MulConfig {
    Recursive(RecursiveMultiplier),
    Wallace(WallaceMultiplier),
    Truncated(TruncatedMultiplier),
}

impl MulConfig {
    fn as_multiplier(&self) -> &dyn Multiplier {
        match self {
            MulConfig::Recursive(m) => m,
            MulConfig::Wallace(m) => m,
            MulConfig::Truncated(m) => m,
        }
    }

    fn as_multiplier_x64(&self) -> &dyn MultiplierX64 {
        match self {
            MulConfig::Recursive(m) => m,
            MulConfig::Wallace(m) => m,
            MulConfig::Truncated(m) => m,
        }
    }

    fn bound(&self) -> ErrorBound {
        match self {
            MulConfig::Recursive(m) => recursive_multiplier_bound(m),
            MulConfig::Wallace(m) => certified_wallace_bound(m),
            MulConfig::Truncated(m) => truncated_bound(m),
        }
    }

    /// The compositional error calculus' certified metrics: the exact
    /// error PMF where the family's structure permits (Wallace and
    /// truncated at every shipped width, recursive leaves), a sound
    /// interval otherwise. Available at *any* width.
    fn certified(&self) -> CertifiedMetrics {
        match self {
            MulConfig::Recursive(m) => recursive_calculus(m),
            MulConfig::Wallace(m) => wallace_calculus(m, None),
            MulConfig::Truncated(m) => truncated_calculus(m),
        }
    }

    /// The *provable* worst-case error: from the compositional calculus
    /// whenever it certifies the exact distribution (any width), else
    /// from the monolithic symbolic miter where the operand width keeps
    /// the BDD tractable (the same `2w ≤ 16` cutoff as the exhaustive
    /// quality path). `None` beyond both.
    fn exact_wce(&self, certified: &CertifiedMetrics) -> Option<u128> {
        if let Some(wce) = certified.exact_wce() {
            return Some(wce);
        }
        let w = self.as_multiplier().width();
        if 2 * w > 16 {
            return None;
        }
        let mut bdd = Bdd::new();
        let (a, b) = interleaved_operand_vars(&mut bdd, w);
        let approx = match self {
            MulConfig::Recursive(m) => {
                twins::recursive_multiplier(&mut bdd, w, m.block(), m.sum_mode(), &a, &b)
            }
            MulConfig::Wallace(m) => twins::wallace_multiplier(&mut bdd, m, &a, &b),
            MulConfig::Truncated(m) => twins::truncated_multiplier(&mut bdd, m, &a, &b),
        };
        let exact = twins::mul_exact(&mut bdd, &a, &b);
        Some(exact_metrics(&mut bdd, &approx, &exact, 2 * w).worst_case_error)
    }
}

/// The shared enumeration behind the full and prefiltered spaces: three
/// families, fixed order, one entry per configuration.
fn configurations(width: usize) -> Result<Vec<MulConfig>> {
    let mut configs = Vec::new();

    // Recursive family.
    let sum_modes = [
        SumMode::Accurate,
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx1, lsbs: 2 },
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx3, lsbs: 4 },
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx5, lsbs: 4 },
    ];
    for block in Mul2x2Kind::ALL {
        for sum in sum_modes {
            configs.push(MulConfig::Recursive(RecursiveMultiplier::new(width, block, sum)?));
        }
    }

    // Wallace family (one exact baseline, then the approximate columns —
    // cols = 0 collapses to the same design for every cell kind).
    configs.push(MulConfig::Wallace(WallaceMultiplier::new(
        width,
        FullAdderKind::Accurate,
        0,
    )?));
    for kind in [FullAdderKind::Apx2, FullAdderKind::Apx4, FullAdderKind::Apx5] {
        for cols in [4usize, 8] {
            configs.push(MulConfig::Wallace(WallaceMultiplier::new(width, kind, cols)?));
        }
    }

    // Truncation family.
    for dropped in [0usize, 2, 4, 6] {
        for compensated in [false, true] {
            if dropped == 0 && compensated {
                continue;
            }
            configs.push(MulConfig::Truncated(TruncatedMultiplier::new(
                width, dropped, compensated,
            )?));
        }
    }

    Ok(configs)
}

fn quality(config: &MulConfig, samples: u64) -> ErrorStats {
    let m = config.as_multiplier();
    let w = m.width();
    if 2 * w <= 16 {
        obs_count!("explore.mul.exhaustive_evals", 1);
        exhaustive_binary(w, w, |a, b| a * b, |a, b| m.mul(a, b))
    } else {
        obs_count!("explore.mul.mc_trials", samples);
        let opts = SweepOptions::new(samples, 0x3113);
        // Beyond exhaustive reach, the Monte-Carlo budget runs bit-sliced:
        // 64+ trials per arithmetic pass, deterministic for any worker
        // count (`xlac-sim`'s chunked runner). Wallace trees additionally
        // go through the netlist JIT at 512-lane blocks — same RNG
        // discipline, so the statistics are bit-identical to the
        // behavioural sweep, several times faster.
        if let MulConfig::Wallace(m) = config {
            let prog = CompiledProgram::compile(&wallace_netlist(m));
            return compiled_pair_sweep::<[u64; 8], _>(&prog, m.width(), |a, b| a * b, &opts);
        }
        multiplier_sweep(config.as_multiplier_x64(), &opts)
    }
}

/// Enumerates and characterizes multiplier configurations at the given
/// operand width (power of two in `4..=16`):
///
/// * recursive multipliers: {accurate, SoA, ours} blocks ×
///   {accurate, ApxFA1/3/5 on 2 or 4 LSBs} summation,
/// * Wallace trees with 0/4/8 approximate columns per approximate cell,
/// * truncated multipliers dropping 0/2/4/6 columns, compensated or not.
///
/// `samples` bounds the Monte-Carlo effort for widths beyond exhaustive
/// reach.
///
/// # Errors
///
/// Propagates construction errors (invalid width).
pub fn enumerate_multiplier_space(width: usize, samples: u64) -> Result<Vec<ComponentProfile>> {
    let _span = obs_span!("explore.mul_space");
    let configs = configurations(width)?;
    obs_count!("explore.mul.configs", configs.len() as u64);
    configs
        .iter()
        .map(|config| {
            let m = config.as_multiplier();
            Ok(ComponentProfile::new(m.name(), m.hw_cost(), quality(config, samples)))
        })
        .collect()
}

/// A configuration seen through the static lens only: name, cost, and the
/// `xlac-analysis` error bound — no simulation behind it.
#[derive(Debug, Clone)]
pub struct StaticPoint {
    /// Configuration name.
    pub name: String,
    /// Static worst-case error bound (sound ceiling on any observed
    /// error).
    pub wce_bound: u128,
    /// The *exact* worst-case error: proven by the compositional error
    /// calculus wherever it certifies the full distribution (Wallace and
    /// truncated configurations at every shipped width, 16×16 and 32×32
    /// included), or by the monolithic symbolic miter at `2w ≤ 16`.
    /// `None` only where neither applies (wide recursive designs).
    pub wce_exact: Option<u128>,
    /// The calculus' certified worst-case ceiling — sound at every
    /// width, and equal to `wce_exact` where that is present.
    pub wce_certified: u128,
    /// Static bound on the mean absolute error under uniform inputs.
    pub mean_bound: f64,
    /// Hardware cost.
    pub cost: HwCost,
}

impl StaticPoint {
    /// The sharpest available error ceiling: the proven exact WCE where
    /// one exists, otherwise the tighter of the static bound and the
    /// calculus' certified interval ceiling. Always sound, so pruning on
    /// it is safe — at *every* width, not just the exhaustive ones.
    #[must_use]
    pub fn wce_ceiling(&self) -> u128 {
        self.wce_exact.unwrap_or_else(|| self.wce_bound.min(self.wce_certified))
    }
}

/// The outcome of the statically prefiltered enumeration.
#[derive(Debug, Clone)]
pub struct PrefilteredSpace {
    /// Configurations on the static `(area, wce-bound)` Pareto frontier,
    /// fully characterized by Monte-Carlo / exhaustive simulation.
    pub evaluated: Vec<ComponentProfile>,
    /// Configurations statically dominated before any simulation ran.
    pub pruned: Vec<StaticPoint>,
}

/// `true` when `b` dominates `a` on (area, wce-ceiling): no worse on
/// both axes and strictly better on at least one. The ceiling is the
/// exact symbolic WCE where the width permits, so at paper widths the
/// pruning decision is made on *proven* error, not on the conservative
/// bound.
fn statically_dominated(a: &StaticPoint, b: &StaticPoint) -> bool {
    b.cost.area_ge <= a.cost.area_ge
        && b.wce_ceiling() <= a.wce_ceiling()
        && (b.cost.area_ge < a.cost.area_ge || b.wce_ceiling() < a.wce_ceiling())
}

/// Enumerates the multiplier space with static error analysis as a
/// pre-filter: every configuration gets a free `xlac-analysis` error
/// ceiling — the *exact* worst-case error proven by the symbolic BDD
/// engine where the width permits (`2w ≤ 16`), the conservative static
/// bound beyond that — the `(area, worst-case-error)` Pareto frontier is
/// computed from those ceilings alone, and only frontier members are
/// characterized by simulation. Because both ceilings are sound, a
/// configuration dominated statically (someone else is cheaper **and**
/// carries a smaller guaranteed-error ceiling) can never redeem itself
/// under measurement on these axes — pruning it is safe, and the
/// Monte-Carlo budget concentrates on genuine trade-off candidates. At
/// paper widths the exact ceilings are often far below the bounds (the
/// Wallace bound over-estimates by ~60×), so the frontier they induce is
/// the true one.
///
/// # Errors
///
/// Propagates construction errors (invalid width).
pub fn enumerate_multiplier_space_prefiltered(
    width: usize,
    samples: u64,
) -> Result<PrefilteredSpace> {
    let _span = obs_span!("explore.mul_space_prefiltered");
    let configs = configurations(width)?;
    obs_count!("explore.mul.configs", configs.len() as u64);
    let points: Vec<StaticPoint> = configs
        .iter()
        .map(|config| {
            let bound = config.bound();
            let certified = config.certified();
            StaticPoint {
                name: config.as_multiplier().name(),
                wce_bound: bound.wce(),
                wce_exact: config.exact_wce(&certified),
                wce_certified: certified.wce_hi(),
                mean_bound: bound.mean_abs,
                cost: config.as_multiplier().hw_cost(),
            }
        })
        .collect();
    let mut evaluated = Vec::new();
    let mut pruned = Vec::new();
    for (config, point) in configs.iter().zip(&points) {
        if points.iter().any(|other| statically_dominated(point, other)) {
            pruned.push(point.clone());
        } else {
            let m = config.as_multiplier();
            evaluated.push(ComponentProfile::new(m.name(), m.hw_cost(), quality(config, samples)));
        }
    }
    obs_count!("explore.mul.pruned", pruned.len() as u64);
    obs_count!("explore.mul.evaluated", evaluated.len() as u64);
    Ok(PrefilteredSpace { evaluated, pruned })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto_frontier;

    #[test]
    fn space_has_the_three_families() {
        let space = enumerate_multiplier_space(8, 10_000).unwrap();
        assert!(space.iter().any(|p| p.name.starts_with("RecMul")));
        assert!(space.iter().any(|p| p.name.starts_with("Wallace")));
        assert!(space.iter().any(|p| p.name.starts_with("TruncMul")));
        // Names are unique.
        let mut names: Vec<&str> = space.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn wallace_monte_carlo_path_matches_the_behavioural_sweep() {
        // Width 16 is beyond exhaustive reach (2w = 32 > 16), so quality()
        // routes Wallace configs through the compiled-netlist sweep. The
        // RNG discipline guarantees stats identical to the behavioural
        // bit-sliced sweep.
        let m = WallaceMultiplier::new(16, FullAdderKind::Apx2, 6).unwrap();
        let config = MulConfig::Wallace(m);
        let samples = 4_096;
        assert_eq!(
            quality(&config, samples),
            multiplier_sweep(&m, &SweepOptions::new(samples, 0x3113))
        );
    }

    #[test]
    fn exact_configurations_have_zero_error() {
        let space = enumerate_multiplier_space(8, 10_000).unwrap();
        for p in &space {
            let exactish = (p.name.contains("AccMul") && !p.name.contains("xApxFA"))
                || p.name == "Wallace(N=8)"
                || p.name == "TruncMul(N=8,D=0)";
            if exactish {
                assert!(p.quality.is_exact(), "{} should be exact", p.name);
            }
        }
    }

    #[test]
    fn pareto_frontier_spans_the_families() {
        let space = enumerate_multiplier_space(8, 10_000).unwrap();
        let frontier = pareto_frontier(
            &space,
            &[
                &|p: &ComponentProfile| p.cost.area_ge,
                &|p| p.quality.mean_relative_error,
            ],
        );
        assert!(frontier.len() >= 3, "a real trade-off curve");
        assert!(frontier.len() < space.len(), "something must be dominated");
        // An exact design anchors the quality end of the frontier.
        assert!(frontier.iter().any(|p| p.quality.is_exact()));
    }

    #[test]
    fn prefilter_partitions_the_space() {
        let full = enumerate_multiplier_space(8, 10_000).unwrap();
        let pre = enumerate_multiplier_space_prefiltered(8, 10_000).unwrap();
        assert_eq!(pre.evaluated.len() + pre.pruned.len(), full.len());
        assert!(!pre.pruned.is_empty(), "static pruning must bite");
        assert!(!pre.evaluated.is_empty());
        let full_names: Vec<&str> = full.iter().map(|p| p.name.as_str()).collect();
        for p in pre.evaluated.iter().map(|p| p.name.as_str()) {
            assert!(full_names.contains(&p), "{p} not in the full space");
        }
        // An exact design always survives (nothing can dominate wce 0 and
        // minimal area simultaneously).
        assert!(pre.evaluated.iter().any(|p| p.quality.is_exact()));
    }

    #[test]
    fn pruned_designs_are_covered_by_an_evaluated_one() {
        // Pareto dominance is transitive, so every pruned design must be
        // dominated by a *frontier* member — and the frontier member's
        // measured worst error is covered by its static wce, which in
        // turn is no larger than the pruned design's bound. This is the
        // soundness argument for skipping the pruned simulations.
        let pre = enumerate_multiplier_space_prefiltered(8, 10_000).unwrap();
        for pruned in &pre.pruned {
            assert!(
                pre.evaluated.iter().any(|e| {
                    e.cost.area_ge <= pruned.cost.area_ge
                        && (e.quality.max_error_distance as u128) <= pruned.wce_bound
                }),
                "{} pruned without a covering frontier member",
                pruned.name
            );
        }
    }

    #[test]
    fn exact_wce_is_present_and_within_the_bound_at_paper_width() {
        let pre = enumerate_multiplier_space_prefiltered(8, 2_000).unwrap();
        // 8-bit operands (16 input bits): every pruned point carries a
        // proven exact WCE, and it never exceeds the static bound.
        assert!(!pre.pruned.is_empty());
        for pt in &pre.pruned {
            let exact = pt.wce_exact.expect("8-bit configs are provable");
            assert!(exact <= pt.wce_bound, "{}: exact {exact} > bound {}", pt.name, pt.wce_bound);
            assert_eq!(pt.wce_ceiling(), exact, "{}: pruning must use the proof", pt.name);
        }
        // The exact ceilings genuinely sharpen at least one design (the
        // Wallace bounds are very conservative).
        assert!(
            pre.pruned.iter().any(|pt| pt.wce_exact.unwrap() < pt.wce_bound),
            "exact analysis should beat at least one static bound"
        );
    }

    #[test]
    fn exact_pruning_never_discards_a_measured_winner() {
        // The frontier computed on exact WCE is sound against the
        // measured worst errors: every pruned design is covered by an
        // evaluated one whose *measured* worst error is no larger than
        // the pruned design's proven WCE.
        let pre = enumerate_multiplier_space_prefiltered(8, 2_000).unwrap();
        for pruned in &pre.pruned {
            let ceiling = pruned.wce_ceiling();
            assert!(
                pre.evaluated.iter().any(|e| {
                    e.cost.area_ge <= pruned.cost.area_ge
                        && (e.quality.max_error_distance as u128) <= ceiling
                }),
                "{} pruned without a covering frontier member",
                pruned.name
            );
        }
    }

    #[test]
    fn wide_spaces_prune_on_certified_wce() {
        // 16×16 and 32×32 are far beyond the monolithic miter (32/64
        // input bits), yet the compositional calculus certifies every
        // configuration: exact distributions for the Wallace and
        // truncated families, sound intervals for the recursive one —
        // so static pruning runs on proven numbers at wide widths too.
        for width in [16usize, 32] {
            let pre = enumerate_multiplier_space_prefiltered(width, 500).unwrap();
            assert!(!pre.pruned.is_empty(), "width {width}: pruning must bite");
            for pt in &pre.pruned {
                assert!(pt.wce_ceiling() <= pt.wce_bound, "{}", pt.name);
                if pt.name.starts_with("Wallace") || pt.name.starts_with("TruncMul") {
                    assert!(
                        pt.wce_exact.is_some(),
                        "{}: calculus must certify the exact distribution",
                        pt.name
                    );
                }
            }
            // The certified ceilings genuinely sharpen the frontier:
            // `wce_bound` for Wallace points already *is* the
            // calculus-tightened `certified_wallace_bound`, so measure
            // the gain against the raw structural bound instead.
            let m = WallaceMultiplier::new(width, FullAdderKind::Apx2, 8).unwrap();
            let structural = xlac_analysis::components::wallace_bound(&m).wce();
            let certified = wallace_calculus(&m, None)
                .exact_wce()
                .expect("Wallace cone is exact at every shipped width");
            assert!(
                certified < structural,
                "width {width}: certified {certified} should beat the structural {structural}"
            );
        }
    }

    #[test]
    fn sixteen_bit_space_uses_sampling() {
        let space = enumerate_multiplier_space(16, 5_000).unwrap();
        // All sampled profiles saw the configured number of samples.
        let sampled = space.iter().find(|p| !p.quality.is_exact()).expect("approx exists");
        assert_eq!(sampled.quality.samples, 5_000);
    }
}
