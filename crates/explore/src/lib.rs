//! # xlac-explore — design-space exploration of approximate components
//!
//! Section 4.2 and Fig.4/Table IV of the paper: "different combinations of
//! R and P for an N-bit GeAr adder result in approximate adder designs
//! with different area/performance/accuracy tradeoff", and the error model
//! "enables fast exploration of the design space … when working at a
//! higher abstract layer of the system stack."
//!
//! * [`gear_space`] — enumerate **all** valid `(R, P)` configurations for
//!   an operand width, scoring each with the analytical error model and
//!   the LUT area model (the Table IV generator).
//! * [`mul_space`] — enumerate the multiplier design space, with an
//!   optional **static pre-filter**: `xlac-analysis` error bounds prune
//!   statically dominated configurations before any Monte-Carlo
//!   simulation runs.
//! * [`pareto`] — generic Pareto-frontier extraction over
//!   (cost, quality) records.
//! * [`selection`] — the constraint queries from the paper's text: the
//!   maximum-accuracy configuration, and the minimum-area configuration
//!   subject to an accuracy floor (the "R3P5 at ≥ 90 %" example).
//!
//! # Example
//!
//! ```
//! use xlac_explore::gear_space::enumerate_gear_space;
//! use xlac_explore::selection::{max_accuracy, min_area_with_accuracy};
//!
//! # fn main() -> Result<(), xlac_core::XlacError> {
//! let space = enumerate_gear_space(11)?;
//! let best = max_accuracy(&space)?;
//! assert_eq!((best.r, best.p), (1, 9)); // the paper's pick
//! let frugal = min_area_with_accuracy(&space, 90.0)?;
//! assert!(frugal.accuracy_percent >= 90.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gear_space;
pub mod mul_space;
pub mod pareto;
pub mod selection;

pub use gear_space::{enumerate_gear_space, GearDesignPoint};
pub use mul_space::{
    enumerate_multiplier_space, enumerate_multiplier_space_prefiltered, PrefilteredSpace,
    StaticPoint,
};
pub use pareto::pareto_frontier;
pub use selection::{max_accuracy, min_area_with_accuracy};
