//! Hermetic, zero-dependency observability for the xlac workspace.
//!
//! The paper's multi-accelerator methodology (§6) is built on *runtime*
//! knowledge — quality monitors, error budgets, adaptive reconfiguration
//! — and the workspace's own hot paths (the bit-sliced sweep runner, the
//! design-space explorers, the symbolic proof engine) make decisions
//! worth seeing. This crate provides the instrumentation substrate:
//!
//! * **counters** — monotone `u64` sums ([`counter_add`]); chunk-level
//!   contributions are commutative, so totals are bitwise-identical for
//!   any thread count;
//! * **gauges** — last-written `f64` samples ([`gauge_set`]);
//! * **histograms** — log2-bucketed `u64` distributions ([`observe`]);
//! * **span timers** — RAII scopes ([`span`]) that maintain a
//!   thread-local span stack; nested spans record under dotted paths
//!   (`"sim.sweep.chunk"`), and every span feeds a log2 histogram of
//!   nanosecond durations;
//! * **a JSON-lines exporter** ([`export_json_lines`]) whose span lines
//!   use the exact field set of the `BENCH_*.json` reports emitted by
//!   `xlac-bench`, so one toolchain reads both.
//!
//! # Naming scheme
//!
//! Metric names are dotted paths whose first segment is the owning phase:
//! `sim.*` (sweep runner), `explore.*` (design-space loops), `accel.*`
//! (manager / monitor / CEC) and `analysis.*` (symbolic engine). The
//! `xlac-obs-report` binary groups its profile table by that first
//! segment.
//!
//! # Feature gating
//!
//! Everything is behind the `obs` cargo feature, **off by default**. In
//! a default build each function here is an `#[inline(always)]` empty
//! body, [`Span`] is a zero-sized type, and the `obs_count!` /
//! `obs_gauge!` / `obs_observe!` / `obs_span!` macros expand without
//! evaluating their arguments — call sites in the hot loops cost
//! nothing. With `--features obs` the same calls hit a global registry
//! (`Mutex`-guarded `BTreeMap`s); instrumented code records at *chunk*
//! granularity, never per trial, which keeps the measured sweep
//! overhead within the CI gate's 5% budget (DESIGN.md §12).
//!
//! # Example
//!
//! ```
//! let _outer = xlac_obs::obs_span!("demo");
//! xlac_obs::obs_count!("demo.widgets", 3);
//! xlac_obs::obs_observe!("demo.sizes", 100);
//! # #[cfg(feature = "obs")]
//! assert_eq!(xlac_obs::snapshot().counter("demo.widgets"), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A point-in-time copy of the registry, sorted by metric name.
///
/// With the `obs` feature off this is always empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Last-written gauge values, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Value histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Span timing summaries, path-sorted.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// The total of the named counter, if it was ever incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The last value written to the named gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// `true` when no metric of any kind has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

/// Summary of one log2-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Bucket occupancy: bucket 0 holds the value 0, bucket `b ≥ 1`
    /// holds `2^(b-1) ..= 2^b - 1`. Trailing empty buckets are trimmed.
    pub buckets: Vec<u64>,
}

/// Summary of one span timer (all durations in nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Dotted span path (`"sim.sweep.chunk"`).
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Total time across all spans (saturating).
    pub total_ns: u64,
    /// Shortest span.
    pub min_ns: u64,
    /// Longest span.
    pub max_ns: u64,
    /// Median estimated from the log2 histogram (geometric bucket
    /// midpoint, clamped to `[min_ns, max_ns]`) — spans do not retain
    /// individual samples.
    pub median_ns: f64,
}

#[cfg(feature = "obs")]
mod enabled {
    use super::{HistogramSnapshot, Snapshot, SpanSnapshot};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Instant;

    /// One more bucket than there are bit positions: bucket 0 is the
    /// value 0, bucket `b` covers `2^(b-1) ..= 2^b - 1`.
    const BUCKETS: usize = 65;

    #[derive(Clone)]
    pub(super) struct Histogram {
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; BUCKETS],
    }

    impl Histogram {
        fn new() -> Self {
            Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
        }

        fn record(&mut self, value: u64) {
            self.count += 1;
            self.sum = self.sum.saturating_add(value);
            self.min = self.min.min(value);
            self.max = self.max.max(value);
            self.buckets[(64 - value.leading_zeros()) as usize] += 1;
        }

        fn median_estimate(&self) -> f64 {
            if self.count == 0 {
                return 0.0;
            }
            let target = self.count.div_ceil(2);
            let mut cumulative = 0u64;
            for (b, &c) in self.buckets.iter().enumerate() {
                cumulative += c;
                if cumulative >= target {
                    let mid =
                        if b == 0 { 0.0 } else { 1.5 * (2.0f64).powi(b as i32 - 1) };
                    return mid.clamp(self.min as f64, self.max as f64);
                }
            }
            self.max as f64
        }

        fn histogram_snapshot(&self, name: &str) -> HistogramSnapshot {
            let last = self.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            HistogramSnapshot {
                name: name.to_string(),
                count: self.count,
                sum: self.sum,
                min: if self.count == 0 { 0 } else { self.min },
                max: self.max,
                buckets: self.buckets[..last].to_vec(),
            }
        }

        fn span_snapshot(&self, name: &str) -> SpanSnapshot {
            SpanSnapshot {
                name: name.to_string(),
                count: self.count,
                total_ns: self.sum,
                min_ns: if self.count == 0 { 0 } else { self.min },
                max_ns: self.max,
                median_ns: self.median_estimate(),
            }
        }
    }

    #[derive(Default)]
    struct Registry {
        counters: BTreeMap<String, u64>,
        gauges: BTreeMap<String, f64>,
        histograms: BTreeMap<String, Histogram>,
        spans: BTreeMap<String, Histogram>,
    }

    fn registry() -> MutexGuard<'static, Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        // A panicking instrumented thread must not take observability
        // down with it: recover the poisoned registry.
        REGISTRY
            .get_or_init(|| Mutex::new(Registry::default()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    thread_local! {
        static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII span timer (see [`crate::span`]).
    #[derive(Debug)]
    pub struct Span {
        path: String,
        start: Instant,
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            registry().spans.entry(std::mem::take(&mut self.path)).or_insert_with(Histogram::new).record(ns);
        }
    }

    pub(super) fn enabled() -> bool {
        true
    }

    pub(super) fn counter_add(name: &'static str, delta: u64) {
        let mut reg = registry();
        if let Some(total) = reg.counters.get_mut(name) {
            *total += delta;
        } else {
            reg.counters.insert(name.to_string(), delta);
        }
    }

    pub(super) fn gauge_set(name: &'static str, value: f64) {
        let mut reg = registry();
        if let Some(slot) = reg.gauges.get_mut(name) {
            *slot = value;
        } else {
            reg.gauges.insert(name.to_string(), value);
        }
    }

    pub(super) fn observe(name: &'static str, value: u64) {
        let mut reg = registry();
        if let Some(h) = reg.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            reg.histograms.insert(name.to_string(), h);
        }
    }

    pub(super) fn span(name: &'static str) -> Span {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                let mut p = stack.join(".");
                p.push('.');
                p.push_str(name);
                p
            };
            stack.push(name);
            path
        });
        Span { path, start: Instant::now() }
    }

    pub(super) fn snapshot() -> Snapshot {
        let reg = registry();
        Snapshot {
            counters: reg.counters.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            gauges: reg.gauges.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            histograms: reg.histograms.iter().map(|(n, h)| h.histogram_snapshot(n)).collect(),
            spans: reg.spans.iter().map(|(n, h)| h.span_snapshot(n)).collect(),
        }
    }

    pub(super) fn reset() {
        let mut reg = registry();
        reg.counters.clear();
        reg.gauges.clear();
        reg.histograms.clear();
        reg.spans.clear();
    }
}

#[cfg(feature = "obs")]
pub use enabled::Span;

/// `true` when the `obs` feature is compiled in.
#[cfg(feature = "obs")]
#[must_use]
pub fn enabled() -> bool {
    enabled::enabled()
}

/// Adds `delta` to the named counter.
///
/// Counter totals are plain integer sums, so any set of contributions
/// produces the same total regardless of thread interleaving — the
/// property the sweep-runner determinism suite pins down.
#[cfg(feature = "obs")]
pub fn counter_add(name: &'static str, delta: u64) {
    enabled::counter_add(name, delta);
}

/// Sets the named gauge to `value` (last write wins).
#[cfg(feature = "obs")]
pub fn gauge_set(name: &'static str, value: f64) {
    enabled::gauge_set(name, value);
}

/// Records `value` into the named log2-bucketed histogram.
#[cfg(feature = "obs")]
pub fn observe(name: &'static str, value: u64) {
    enabled::observe(name, value);
}

/// Opens an RAII span timer. The span's full path is the thread's
/// current span stack joined with dots plus `name`; the duration is
/// recorded into a histogram under that path when the guard drops.
#[cfg(feature = "obs")]
#[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
pub fn span(name: &'static str) -> Span {
    enabled::span(name)
}

/// Copies the current registry contents.
#[cfg(feature = "obs")]
#[must_use]
pub fn snapshot() -> Snapshot {
    enabled::snapshot()
}

/// Clears every metric (intended for tests and between report phases).
#[cfg(feature = "obs")]
pub fn reset() {
    enabled::reset();
}

/// The disabled [`span`] guard: a zero-sized type with a trivial drop.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Clone, Copy, Default)]
pub struct Span;

/// `true` when the `obs` feature is compiled in.
#[cfg(not(feature = "obs"))]
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    false
}

/// No-op: the `obs` feature is off.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn counter_add(_name: &'static str, _delta: u64) {}

/// No-op: the `obs` feature is off.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn gauge_set(_name: &'static str, _value: f64) {}

/// No-op: the `obs` feature is off.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn observe(_name: &'static str, _value: u64) {}

/// No-op: returns the zero-sized [`Span`].
#[cfg(not(feature = "obs"))]
#[inline(always)]
#[must_use]
pub fn span(_name: &'static str) -> Span {
    Span
}

/// Always empty: the `obs` feature is off.
#[cfg(not(feature = "obs"))]
#[inline(always)]
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// No-op: the `obs` feature is off.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub fn reset() {}

/// Serializes the registry as JSON lines (one object per metric).
///
/// Span lines carry the exact field set of `xlac-bench`'s
/// `BENCH_*.json` reports (`name` / `samples` / `iters_per_sample` /
/// `median_ns` / `mean_ns` / `min_ns` / `max_ns`), so the same tooling
/// — including `xlac-obs-report --gate` — consumes bench output and
/// span output interchangeably. Counters, gauges and histograms use
/// kind-prefixed names (`counter/…`, `gauge/…`, `hist/…`); non-finite
/// gauge values are emitted as `null`, never `NaN`.
///
/// With the `obs` feature off, returns an empty string.
#[must_use]
pub fn export_json_lines() -> String {
    let snap = snapshot();
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!("{{\"name\":{:?},\"value\":{value}}}\n", format!("counter/{name}")));
    }
    for (name, value) in &snap.gauges {
        if value.is_finite() {
            out.push_str(&format!(
                "{{\"name\":{:?},\"value\":{value:.6}}}\n",
                format!("gauge/{name}")
            ));
        } else {
            out.push_str(&format!("{{\"name\":{:?},\"value\":null}}\n", format!("gauge/{name}")));
        }
    }
    for h in &snap.histograms {
        let buckets =
            h.buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        out.push_str(&format!(
            "{{\"name\":{:?},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{buckets}]}}\n",
            format!("hist/{}", h.name),
            h.count,
            h.sum,
            h.min,
            h.max,
        ));
    }
    for s in &snap.spans {
        let mean = if s.count == 0 { 0.0 } else { s.total_ns as f64 / s.count as f64 };
        out.push_str(&format!(
            "{{\"name\":{:?},\"samples\":{},\"iters_per_sample\":1,\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}\n",
            format!("span/{}", s.name),
            s.count,
            s.median_ns,
            mean,
            s.min_ns as f64,
            s.max_ns as f64,
        ));
    }
    out
}

/// Adds to a counter; with the `obs` feature off the arguments are not
/// evaluated.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_count {
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta)
    };
}

/// Adds to a counter; with the `obs` feature off the arguments are not
/// evaluated.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_count {
    ($name:expr, $delta:expr) => {{
        let _ = || ($name, $delta);
    }};
}

/// Sets a gauge; with the `obs` feature off the arguments are not
/// evaluated.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_gauge {
    ($name:expr, $value:expr) => {
        $crate::gauge_set($name, $value)
    };
}

/// Sets a gauge; with the `obs` feature off the arguments are not
/// evaluated.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_gauge {
    ($name:expr, $value:expr) => {{
        let _ = || ($name, $value);
    }};
}

/// Records a histogram value; with the `obs` feature off the arguments
/// are not evaluated.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_observe {
    ($name:expr, $value:expr) => {
        $crate::observe($name, $value)
    };
}

/// Records a histogram value; with the `obs` feature off the arguments
/// are not evaluated.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_observe {
    ($name:expr, $value:expr) => {{
        let _ = || ($name, $value);
    }};
}

/// Opens a span timer; with the `obs` feature off this is the
/// zero-sized guard and the name is not evaluated.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Opens a span timer; with the `obs` feature off this is the
/// zero-sized guard and the name is not evaluated.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {{
        let _ = || $name;
        $crate::Span
    }};
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// The registry is process-global and libtest runs tests on several
    /// threads: serialize every test that resets and inspects it.
    fn lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _guard = lock();
        reset();
        counter_add("t.a", 2);
        counter_add("t.a", 3);
        counter_add("t.b", 1);
        let snap = snapshot();
        assert_eq!(snap.counter("t.a"), Some(5));
        assert_eq!(snap.counter("t.b"), Some(1));
        assert_eq!(snap.counter("t.missing"), None);
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn gauges_keep_the_last_write() {
        let _guard = lock();
        reset();
        gauge_set("t.g", 1.5);
        gauge_set("t.g", 2.5);
        assert_eq!(snapshot().gauge("t.g"), Some(2.5));
        reset();
    }

    #[test]
    fn histograms_bucket_by_log2() {
        let _guard = lock();
        reset();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            observe("t.h", v);
        }
        let snap = snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.name, "t.h");
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!((h.min, h.max), (0, 1000));
        // value 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 1000 → 10.
        assert_eq!(h.buckets[0..4], [1, 1, 2, 1]);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets.len(), 11, "trailing empty buckets are trimmed");
        reset();
    }

    #[test]
    fn nested_spans_record_dotted_paths() {
        let _guard = lock();
        reset();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _second = span("inner");
        }
        let snap = snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "outer.inner"]);
        let inner = &snap.spans[1];
        assert_eq!(inner.count, 2);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(inner.max_ns >= 1_000_000, "the slept span is at least 1ms");
        assert!(inner.total_ns >= inner.max_ns);
        let outer = &snap.spans[0];
        assert!(outer.max_ns >= inner.max_ns, "outer spans its children");
        // The median estimate stays within the recorded range.
        assert!(inner.median_ns >= inner.min_ns as f64);
        assert!(inner.median_ns <= inner.max_ns as f64);
        reset();
    }

    #[test]
    fn export_is_json_lines_with_bench_compatible_spans() {
        let _guard = lock();
        reset();
        counter_add("t.c", 7);
        gauge_set("t.finite", 0.25);
        gauge_set("t.nan", f64::NAN);
        observe("t.h", 5);
        drop(span("t_span"));
        let out = export_json_lines();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(lines.iter().any(|l| l.contains("\"name\":\"counter/t.c\",\"value\":7")));
        assert!(lines.iter().any(|l| l.contains("\"gauge/t.nan\",\"value\":null")));
        assert!(!out.contains("NaN"), "non-finite values must not leak into JSON");
        let span_line = lines.iter().find(|l| l.contains("span/t_span")).unwrap();
        for field in
            ["\"samples\":", "\"iters_per_sample\":1", "\"median_ns\":", "\"mean_ns\":", "\"min_ns\":", "\"max_ns\":"]
        {
            assert!(span_line.contains(field), "{span_line}");
        }
        reset();
    }

    #[test]
    fn macros_forward_to_the_registry() {
        let _guard = lock();
        reset();
        obs_count!("t.m", 4);
        obs_gauge!("t.mg", 9.0);
        obs_observe!("t.mh", 2);
        {
            let _s = obs_span!("t_mspan");
        }
        let snap = snapshot();
        assert_eq!(snap.counter("t.m"), Some(4));
        assert_eq!(snap.gauge("t.mg"), Some(9.0));
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.spans.len(), 1);
        reset();
    }
}

#[cfg(all(test, not(feature = "obs")))]
mod noop_tests {
    use super::*;

    #[test]
    fn disabled_build_is_a_true_noop() {
        assert!(!enabled());
        assert_eq!(std::mem::size_of::<Span>(), 0, "the disabled span guard is zero-sized");
        counter_add("t.a", 1);
        gauge_set("t.g", 1.0);
        observe("t.h", 1);
        let _s = span("t.s");
        obs_count!("t.m", 1);
        let _ms = obs_span!("t.ms");
        assert!(snapshot().is_empty());
        assert!(export_json_lines().is_empty());
    }
}
