//! `xlac-obs-report` — aggregates `xlac-obs` / `xlac-bench` JSON lines.
//!
//! Two modes:
//!
//! * **Profile** (default): read one or more JSON-lines files (as written
//!   by [`xlac_obs::export_json_lines`] and the `BENCH_*.json` reports)
//!   and print a per-phase profile table. The phase of a metric is the
//!   first dotted segment of its name (`sim`, `explore`, `accel`,
//!   `analysis`); bench-result lines group under the part of their name
//!   before `/`.
//!
//! * **Gate** (`--gate BASELINE INSTRUMENTED`): compare every
//!   bench-format line present in both files by `min_ns` (the
//!   noise-robust statistic) and exit non-zero when the instrumented
//!   build is more than `--tolerance` (default 0.05 = 5%) slower on any
//!   of them. This is the CI overhead gate for the `obs` feature.
//!
//! ```text
//! xlac-obs-report FILE...
//! xlac-obs-report --gate BASELINE INSTRUMENTED [--tolerance FRAC]
//! ```
//!
//! The parser is hand-rolled (the workspace is dependency-free) and
//! accepts the flat objects both emitters produce: string, number,
//! `null` and arrays of numbers.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// A value in one flat JSON-line object.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Arr(Vec<f64>),
    Null,
}

impl Value {
    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// One parsed line: field name → value, plus insertion order not needed.
type Object = BTreeMap<String, Value>;

/// Scans a JSON string literal starting at `bytes[i]` (the opening
/// quote), returning the unescaped contents and the index past the
/// closing quote.
fn scan_string(bytes: &[u8], mut i: usize) -> Option<(String, usize)> {
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, i + 1)),
            b'\\' => {
                let esc = *bytes.get(i + 1)?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    _ => return None, // \uXXXX etc. never appear in our output
                });
                i += 2;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    None
}

/// Scans a JSON number starting at `bytes[i]`.
fn scan_number(bytes: &[u8], i: usize) -> Option<(f64, usize)> {
    let start = i;
    let mut end = i;
    while end < bytes.len()
        && matches!(bytes[end], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        end += 1;
    }
    let text = std::str::from_utf8(&bytes[start..end]).ok()?;
    text.parse().ok().map(|v| (v, end))
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Parses one flat JSON object line. Returns `None` for anything that is
/// not an object of string/number/null/number-array fields.
fn parse_object(line: &str) -> Option<Object> {
    let bytes = line.trim().as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i = skip_ws(bytes, i + 1);
    let mut obj = Object::new();
    if bytes.get(i) == Some(&b'}') {
        return Some(obj);
    }
    loop {
        let (key, next) = scan_string(bytes, i)?;
        i = skip_ws(bytes, next);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i = skip_ws(bytes, i + 1);
        let value;
        match bytes.get(i)? {
            b'"' => {
                let (s, next) = scan_string(bytes, i)?;
                value = Value::Str(s);
                i = next;
            }
            b'n' => {
                if !bytes[i..].starts_with(b"null") {
                    return None;
                }
                value = Value::Null;
                i += 4;
            }
            b'[' => {
                i = skip_ws(bytes, i + 1);
                let mut arr = Vec::new();
                if bytes.get(i) == Some(&b']') {
                    i += 1;
                } else {
                    loop {
                        let (v, next) = scan_number(bytes, i)?;
                        arr.push(v);
                        i = skip_ws(bytes, next);
                        match bytes.get(i)? {
                            b',' => i = skip_ws(bytes, i + 1),
                            b']' => {
                                i += 1;
                                break;
                            }
                            _ => return None,
                        }
                    }
                }
                value = Value::Arr(arr);
            }
            _ => {
                let (v, next) = scan_number(bytes, i)?;
                value = Value::Num(v);
                i = next;
            }
        }
        obj.insert(key, value);
        i = skip_ws(bytes, i);
        match bytes.get(i)? {
            b',' => i = skip_ws(bytes, i + 1),
            b'}' => return Some(obj),
            _ => return None,
        }
    }
}

/// The metric kind encoded in a line's `name` field.
enum Kind {
    Counter(String),
    Gauge(String),
    Hist(String),
    Span(String),
    Bench(String),
}

fn classify(obj: &Object) -> Option<Kind> {
    let Value::Str(name) = obj.get("name")? else { return None };
    if let Some(rest) = name.strip_prefix("counter/") {
        Some(Kind::Counter(rest.to_string()))
    } else if let Some(rest) = name.strip_prefix("gauge/") {
        Some(Kind::Gauge(rest.to_string()))
    } else if let Some(rest) = name.strip_prefix("hist/") {
        Some(Kind::Hist(rest.to_string()))
    } else if let Some(rest) = name.strip_prefix("span/") {
        Some(Kind::Span(rest.to_string()))
    } else if obj.contains_key("samples") && obj.contains_key("min_ns") {
        Some(Kind::Bench(name.clone()))
    } else {
        None
    }
}

/// The phase (profile-table group) of a metric name.
fn phase_of(name: &str) -> String {
    let head = name.split('/').next().unwrap_or(name);
    head.split('.').next().unwrap_or(head).to_string()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn read_lines(path: &str) -> Result<Vec<Object>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(text.lines().filter(|l| l.trim_start().starts_with('{')).filter_map(parse_object).collect())
}

fn profile(paths: &[String]) -> Result<(), String> {
    let mut rows: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut total = 0usize;
    for path in paths {
        for obj in read_lines(path)? {
            let Some(kind) = classify(&obj) else { continue };
            total += 1;
            let (phase, row) = match kind {
                Kind::Counter(name) => {
                    let v = obj.get("value").and_then(Value::as_num).unwrap_or(0.0);
                    (phase_of(&name), format!("counter  {name:<44} {v:>14.0}"))
                }
                Kind::Gauge(name) => {
                    let v = match obj.get("value") {
                        Some(Value::Num(v)) => format!("{v:>14.6}"),
                        _ => format!("{:>14}", "null"),
                    };
                    (phase_of(&name), format!("gauge    {name:<44} {v}"))
                }
                Kind::Hist(name) => {
                    let get = |k: &str| obj.get(k).and_then(Value::as_num).unwrap_or(0.0);
                    (
                        phase_of(&name),
                        format!(
                            "hist     {name:<44} n={:<10.0} sum={:<12.0} min={:<8.0} max={:.0}",
                            get("count"),
                            get("sum"),
                            get("min"),
                            get("max")
                        ),
                    )
                }
                Kind::Span(name) => {
                    let get = |k: &str| obj.get(k).and_then(Value::as_num).unwrap_or(0.0);
                    let samples = get("samples");
                    let total_ns = get("mean_ns") * samples;
                    (
                        phase_of(&name),
                        format!(
                            "span     {name:<44} n={samples:<10.0} total={:<10} mean={:<10} max={}",
                            fmt_ns(total_ns),
                            fmt_ns(get("mean_ns")),
                            fmt_ns(get("max_ns"))
                        ),
                    )
                }
                Kind::Bench(name) => {
                    let get = |k: &str| obj.get(k).and_then(Value::as_num).unwrap_or(0.0);
                    (
                        phase_of(&name),
                        format!(
                            "bench    {name:<44} median={:<10} min={}",
                            fmt_ns(get("median_ns")),
                            fmt_ns(get("min_ns"))
                        ),
                    )
                }
            };
            rows.entry(phase).or_default().push(row);
        }
    }
    if total == 0 {
        return Err(format!("no metric lines found in {}", paths.join(", ")));
    }
    for (phase, lines) in &rows {
        println!("== {phase} ==");
        for line in lines {
            println!("  {line}");
        }
    }
    println!("xlac-obs-report: {total} metric(s) across {} phase(s)", rows.len());
    Ok(())
}

/// Collects `name → min_ns` for every bench-format line in a file.
fn bench_mins(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut mins = BTreeMap::new();
    for obj in read_lines(path)? {
        if let Some(Kind::Bench(name)) = classify(&obj) {
            if let Some(min_ns) = obj.get("min_ns").and_then(Value::as_num) {
                // A bench re-run keeps the better (smaller) observation.
                let slot = mins.entry(name).or_insert(f64::INFINITY);
                *slot = slot.min(min_ns);
            }
        }
    }
    Ok(mins)
}

fn gate(baseline: &str, instrumented: &str, tolerance: f64) -> Result<bool, String> {
    let base = bench_mins(baseline)?;
    let inst = bench_mins(instrumented)?;
    let mut worst: Option<(String, f64)> = None;
    let mut compared = 0usize;
    for (name, &b) in &base {
        let Some(&i) = inst.get(name) else { continue };
        if b <= 0.0 {
            continue;
        }
        compared += 1;
        let overhead = i / b - 1.0;
        println!(
            "gate: {name:<52} base={:<10} inst={:<10} {:+.1}%",
            fmt_ns(b),
            fmt_ns(i),
            overhead * 100.0
        );
        if worst.as_ref().is_none_or(|(_, w)| overhead > *w) {
            worst = Some((name.clone(), overhead));
        }
    }
    if compared == 0 {
        return Err(format!("no bench names shared between {baseline} and {instrumented}"));
    }
    let (name, overhead) = worst.expect("compared > 0 implies a worst entry");
    let ok = overhead <= tolerance;
    println!(
        "obs overhead gate: worst {:+.1}% ({name}) over {compared} bench(es), tolerance {:.1}% — {}",
        overhead * 100.0,
        tolerance * 100.0,
        if ok { "OK" } else { "FAIL" }
    );
    Ok(ok)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--gate") {
        let mut tolerance = 0.05;
        let mut files = Vec::new();
        let mut rest = args[1..].iter();
        while let Some(arg) = rest.next() {
            if arg == "--tolerance" {
                tolerance = rest
                    .next()
                    .ok_or("--tolerance needs a fraction")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            } else {
                files.push(arg.clone());
            }
        }
        let [baseline, instrumented] = files.as_slice() else {
            return Err("usage: xlac-obs-report --gate BASELINE INSTRUMENTED [--tolerance FRAC]"
                .into());
        };
        gate(baseline, instrumented, tolerance)
    } else if args.is_empty() {
        Err("usage: xlac-obs-report FILE... | --gate BASELINE INSTRUMENTED".into())
    } else {
        profile(&args).map(|()| true)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xlac-obs-report: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_and_obs_lines() {
        let bench = r#"{"name":"g/f","samples":12,"iters_per_sample":3,"median_ns":101.5,"mean_ns":102.0,"min_ns":99.0,"max_ns":110.0}"#;
        let obj = parse_object(bench).unwrap();
        assert!(matches!(classify(&obj), Some(Kind::Bench(n)) if n == "g/f"));
        assert_eq!(obj.get("min_ns").and_then(Value::as_num), Some(99.0));

        let counter = r#"{"name":"counter/sim.chunks","value":16}"#;
        let obj = parse_object(counter).unwrap();
        assert!(matches!(classify(&obj), Some(Kind::Counter(n)) if n == "sim.chunks"));

        let hist = r#"{"name":"hist/sim.x","count":2,"sum":3,"min":1,"max":2,"buckets":[0,1,1]}"#;
        let obj = parse_object(hist).unwrap();
        assert_eq!(obj.get("buckets"), Some(&Value::Arr(vec![0.0, 1.0, 1.0])));

        let gauge = r#"{"name":"gauge/analysis.rate","value":null}"#;
        let obj = parse_object(gauge).unwrap();
        assert_eq!(obj.get("value"), Some(&Value::Null));
    }

    #[test]
    fn rejects_non_objects() {
        assert!(parse_object("not json").is_none());
        assert!(parse_object("[1,2]").is_none());
        assert!(parse_object(r#"{"name":"x""#).is_none());
        assert!(parse_object("{}").map(|o| o.is_empty()).unwrap_or(false));
    }

    #[test]
    fn phases_group_by_first_segment() {
        assert_eq!(phase_of("sim.sweep.chunk"), "sim");
        assert_eq!(phase_of("bitslice_mul8x8/scalar_1thread"), "bitslice_mul8x8");
        assert_eq!(phase_of("plain"), "plain");
    }

    #[test]
    fn string_escapes_round_trip() {
        let (s, _) = scan_string(br#""a\"b\\c""#, 0).unwrap();
        assert_eq!(s, "a\"b\\c");
    }
}
