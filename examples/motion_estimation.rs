//! Fig.8-style demo: SAD error surfaces under approximate accelerators.
//!
//! Generates a synthetic frame pair with known motion, then prints the SAD
//! cost surface of one block for the accurate accelerator and two
//! approximate variants — showing the paper's observation that the
//! surface shifts upward while the global minimum (the motion vector)
//! survives mild approximation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example motion_estimation
//! ```

use xlac::accel::sad::{SadAccelerator, SadVariant};
use xlac::video::me::MotionEstimator;
use xlac::video::sequence::{SequenceConfig, SyntheticSequence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seq = SyntheticSequence::generate(&SequenceConfig::fig9())?;
    let frames = seq.frames();
    let (current, reference) = (&frames[3], &frames[2]);

    let block = (2usize, 3usize);
    println!("SAD surfaces for block {block:?} (rows: dy = -4..=4, cols: dx = -4..=4)\n");

    let mut argmins = Vec::new();
    for (variant, lsbs) in
        [(SadVariant::Accurate, 0usize), (SadVariant::ApxSad2, 2), (SadVariant::ApxSad5, 4)]
    {
        let me = MotionEstimator::new(SadAccelerator::new(64, variant, lsbs)?, 4)?;
        let surface = me.sad_surface(current, reference, block.0, block.1)?;
        println!("{variant} with {lsbs} approximate LSBs:");
        let mut best = (u64::MAX, (0usize, 0usize));
        for r in 0..surface.rows() {
            let row: Vec<String> = (0..surface.cols())
                .map(|c| {
                    let v = surface[(r, c)];
                    if v == u64::MAX {
                        "   --".to_string()
                    } else {
                        if v < best.0 {
                            best = (v, (r, c));
                        }
                        format!("{v:>5}")
                    }
                })
                .collect();
            println!("  {}", row.join(" "));
        }
        let mv = (best.1 .0 as i32 - 4, best.1 .1 as i32 - 4);
        println!("  -> minimum {} at displacement {mv:?}\n", best.0);
        argmins.push(mv);
    }

    if argmins.iter().all(|mv| *mv == argmins[0]) {
        println!("All variants agree on the motion vector {:?} — the error", argmins[0]);
        println!("surface is shifted but the global minimum is preserved (Fig.8).");
    } else {
        println!("Variants disagree: {argmins:?} — approximation has started to");
        println!("distort the ranking (expected for aggressive configurations).");
    }

    // Whole-field agreement statistics.
    println!("\nMotion-field agreement vs accurate (whole frame):");
    let exact_me = MotionEstimator::new(SadAccelerator::accurate(64)?, 4)?;
    let exact_field = exact_me.estimate(current, reference)?;
    for (variant, lsbs) in [(SadVariant::ApxSad2, 2usize), (SadVariant::ApxSad3, 4), (SadVariant::ApxSad5, 6)]
    {
        let me = MotionEstimator::new(SadAccelerator::new(64, variant, lsbs)?, 4)?;
        let field = me.estimate(current, reference)?;
        let same = exact_field
            .vectors
            .iter()
            .zip(field.vectors.iter())
            .filter(|(a, b)| a == b)
            .count();
        println!(
            "  {variant} {lsbs} LSBs: {same}/{} motion vectors unchanged",
            exact_field.vectors.len()
        );
    }
    Ok(())
}
