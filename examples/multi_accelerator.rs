//! Section 6 end-to-end: a multi-accelerator approximate computing
//! architecture driven by configuration words and the approximation
//! management unit.
//!
//! Builds an architecture with three accelerator slots (motion-estimation
//! SAD, low-pass filter, DCT), characterizes its power across
//! configuration words, lets the management unit choose per-application
//! modes under a power budget, applies the chosen word, and runs tasks on
//! the reconfigured hardware.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_accelerator
//! ```

use xlac::accel::architecture::{AcceleratorSlot, MultiAcceleratorArchitecture};
use xlac::accel::config::{ApproxMode, ConfigWord};
use xlac::accel::manager::{AcceleratorOption, AppRequest, ApproximationManager};
use xlac::core::Grid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- build the architecture --------------------------------------------
    let mut arch = MultiAcceleratorArchitecture::new();
    arch.add_slot("me", AcceleratorSlot::sad(64)?);
    arch.add_slot("smooth", AcceleratorSlot::filter()?);
    arch.add_slot("xfrm", AcceleratorSlot::dct()?);
    println!("architecture with {} slots", arch.slot_count());
    println!("all-accurate power: {:.0} nW\n", arch.total_power_nw());

    // --- characterize per-slot mode ladders ---------------------------------
    println!("{:<8} {:>12} {:>12} {:>12} {:>12}", "slot", "accurate", "mild", "medium", "aggressive");
    let mut ladders: Vec<Vec<f64>> = Vec::new();
    for (slot_idx, name) in ["me", "smooth", "xfrm"].iter().enumerate() {
        // Measure the slot in isolation: a single-slot architecture swept
        // across the mode ladder.
        let mut solo = MultiAcceleratorArchitecture::new();
        solo.add_slot(*name, match slot_idx {
            0 => AcceleratorSlot::sad(64)?,
            1 => AcceleratorSlot::filter()?,
            _ => AcceleratorSlot::dct()?,
        });
        let mut powers = Vec::new();
        for &mode in &ApproxMode::ALL {
            solo.configure(ConfigWord::pack(&[mode])?)?;
            powers.push(solo.total_power_nw());
        }
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            name, powers[0], powers[1], powers[2], powers[3]
        );
        ladders.push(powers);
    }

    // --- the management unit picks modes under a power budget ---------------
    // Quality-loss figures: reuse the workspace's measured characteristics
    // (bit-rate overhead for ME, 1 − SSIM for the filter, PSNR-derived for
    // the DCT) at representative values.
    let loss_tables = [
        [0.0, 0.001, 0.013, 0.12], // me: Fig.9-style bit-rate overhead
        [0.0, 0.003, 0.01, 0.04],  // smooth: 1 − SSIM
        [0.0, 0.01, 0.05, 0.25],   // xfrm: reconstruction loss
    ];
    let requests: Vec<AppRequest> = (0..3)
        .map(|i| AppRequest {
            app: ["me", "smooth", "xfrm"][i].to_string(),
            max_quality_loss: [0.05, 0.02, 0.06][i],
            options: ApproxMode::ALL
                .iter()
                .enumerate()
                .map(|(m, &mode)| AcceleratorOption {
                    mode,
                    power_nw: ladders[i][m],
                    quality_loss: loss_tables[i][m],
                })
                .collect(),
        })
        .collect();

    // Budget: 80 % of the all-accurate total — pressure, but feasible.
    let budget = ladders.iter().map(|l| l[0]).sum::<f64>() * 0.8;
    let picks = ApproximationManager::select_under_power_budget(&requests, budget)?;
    println!("\nmanagement unit under {budget:.0} nW total budget:");
    let modes: Vec<ApproxMode> = picks.iter().map(|p| p.option.mode).collect();
    for pick in &picks {
        println!("  {:<8} -> {}", pick.app, pick.option.mode);
    }

    // --- apply the word and run real tasks ----------------------------------
    let word = ConfigWord::pack(&modes)?;
    arch.configure(word)?;
    println!("\nconfig word applied: {:#x}", word.raw());
    println!("configured power: {:.0} nW", arch.total_power_nw());

    let cur: Vec<u64> = (0..64).map(|i| (i * 13) % 256).collect();
    let refb: Vec<u64> = (0..64).map(|i| (i * 13 + 5) % 256).collect();
    println!("\ntask results on the configured hardware:");
    println!("  SAD(me)        = {}", arch.run_sad("me", &cur, &refb)?);
    let img = Grid::from_fn(16, 16, |r, c| ((r * 16 + c) % 256) as u64);
    let filtered = arch.run_filter("smooth", &img)?;
    println!("  filter(smooth) = {}x{} image", filtered.rows(), filtered.cols());
    let y = arch.run_dct("xfrm", &[[8i64; 4]; 4])?;
    println!("  dct(xfrm)[0][0] = {}", y[0][0]);

    Ok(())
}
