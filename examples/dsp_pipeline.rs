//! DSP pipeline demo: FIR filtering and DCT analysis on approximate MAC
//! datapaths, across the approximation-mode ladder.
//!
//! Synthesizes a noisy two-tone signal, low-passes it with a binomial FIR
//! at each mode, and reports the per-mode output error and power — then
//! transforms a residual block through the DCT accelerator at each mode
//! and reports coefficient drift. Shows the two structural rules baked
//! into the MAC datapath (zero-preserving cells, per-level error scaling);
//! see `xlac_accel::fir` for the rationale.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dsp_pipeline
//! ```

use xlac::accel::config::ApproxMode;
use xlac::accel::dct::DctAccelerator;
use xlac::accel::fir::FirAccelerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- a noisy two-tone test signal ---------------------------------------
    let samples: Vec<u64> = (0..96)
        .map(|i| {
            let t = i as f64;
            let slow = 80.0 * (t * 0.1).sin();
            let fast = 40.0 * (t * 1.9).sin(); // high-frequency interference
            (128.0 + slow + fast).clamp(0.0, 255.0) as u64
        })
        .collect();
    let taps = [1i64, 4, 6, 4, 1]; // binomial low-pass, gain 16

    println!("FIR(5 taps) across the approximation ladder:");
    println!("{:<12} {:>12} {:>14}", "mode", "mean |err|", "power [nW]");
    let exact_out = FirAccelerator::apply_exact(&taps, &samples);
    for mode in ApproxMode::ALL {
        let fir = FirAccelerator::new(&taps, mode)?;
        let out = fir.apply(&samples);
        let err: f64 = exact_out
            .iter()
            .zip(&out)
            .map(|(e, a)| (e - a).unsigned_abs() as f64)
            .sum::<f64>()
            / out.len() as f64;
        println!("{:<12} {:>12.2} {:>14.0}", mode.to_string(), err, fir.hw_cost().power_nw);
    }

    // --- DCT coefficient drift ----------------------------------------------
    let block = [[30i64, -12, 4, 0], [18, 9, -3, 1], [-25, 6, 2, -2], [11, -7, 0, 3]];
    let exact = DctAccelerator::forward_exact(&block);
    println!("\nDCT4x4 coefficient drift (mean |Δcoef|):");
    println!("{:<10} {:>12} {:>14}", "cell", "mean |Δ|", "power [nW]");
    for (kind, lsbs) in [
        (xlac::adders::FullAdderKind::Accurate, 0usize),
        (xlac::adders::FullAdderKind::Apx1, 3),
        (xlac::adders::FullAdderKind::Apx4, 3),
        (xlac::adders::FullAdderKind::Apx5, 3),
    ] {
        let dct = DctAccelerator::new(kind, lsbs)?;
        let y = dct.forward(&block);
        let drift: f64 = exact
            .iter()
            .flatten()
            .zip(y.iter().flatten())
            .map(|(e, a)| (e - a).unsigned_abs() as f64)
            .sum::<f64>()
            / 16.0;
        println!("{:<10} {:>12.2} {:>14.0}", kind.to_string(), drift, dct.hw_cost().power_nw);
    }

    println!("\nLow-frequency content survives the approximate datapaths; the");
    println!("power column is what each step down the ladder buys.");
    Ok(())
}
