//! Section 6 demo: the approximation management unit picking accelerator
//! modes for concurrently running applications.
//!
//! Characterizes the SAD accelerator in every [`ApproxMode`] (power from
//! the workspace cost model, quality loss from the Fig.9-style encoder
//! study), then lets the manager choose modes for three applications with
//! different quality bounds — first independently, then under a shared
//! power budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example accelerator_manager
//! ```

use xlac::accel::config::ApproxMode;
use xlac::accel::manager::{AcceleratorOption, AppRequest, ApproximationManager};
use xlac::accel::sad::SadAccelerator;
use xlac::video::encoder::{Encoder, EncoderConfig};
use xlac::video::sequence::{SequenceConfig, SyntheticSequence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- characterize each mode on a short sequence ------------------------
    let seq = SyntheticSequence::generate(&SequenceConfig::small_test())?;
    let exact_bits = Encoder::new(EncoderConfig::default(), SadAccelerator::accurate(64)?)?
        .encode(seq.frames())?
        .total_bits as f64;

    println!("characterizing SAD accelerator modes on a test sequence:");
    println!("{:<12} {:>11} {:>18}", "mode", "power[nW]", "bitrate overhead");
    let mut options = Vec::new();
    for mode in ApproxMode::ALL {
        let sad = SadAccelerator::new(
            64,
            match mode {
                ApproxMode::Accurate => xlac::accel::sad::SadVariant::Accurate,
                ApproxMode::Mild => xlac::accel::sad::SadVariant::ApxSad1,
                ApproxMode::Medium => xlac::accel::sad::SadVariant::ApxSad3,
                ApproxMode::Aggressive => xlac::accel::sad::SadVariant::ApxSad5,
            },
            mode.approx_lsbs(),
        )?;
        let power = sad.hw_cost().power_nw;
        let bits =
            Encoder::new(EncoderConfig::default(), sad)?.encode(seq.frames())?.total_bits as f64;
        let loss = (bits / exact_bits - 1.0).max(0.0);
        println!("{:<12} {:>11.0} {:>17.2}%", mode.to_string(), power, loss * 100.0);
        options.push(AcceleratorOption { mode, power_nw: power, quality_loss: loss });
    }

    // --- three applications with different tolerances ----------------------
    let requests = vec![
        AppRequest {
            app: "broadcast-encode".into(),
            max_quality_loss: 0.01,
            options: options.clone(),
        },
        AppRequest { app: "video-call".into(), max_quality_loss: 0.06, options: options.clone() },
        AppRequest { app: "drone-preview".into(), max_quality_loss: 0.5, options: options.clone() },
    ];

    println!("\nper-application minimum-power selection:");
    for pick in ApproximationManager::select_min_power(&requests)? {
        println!(
            "  {:<18} -> {:<10} ({:.0} nW, {:.2}% loss)",
            pick.app,
            pick.option.mode.to_string(),
            pick.option.power_nw,
            pick.option.quality_loss * 100.0
        );
    }

    let budget: f64 = options.iter().map(|o| o.power_nw).fold(0.0, f64::max) * 2.0;
    println!("\nselection under a global budget of {budget:.0} nW:");
    match ApproximationManager::select_under_power_budget(&requests, budget) {
        Ok(picks) => {
            let total: f64 = picks.iter().map(|p| p.option.power_nw).sum();
            for pick in &picks {
                println!(
                    "  {:<18} -> {:<10} ({:.0} nW)",
                    pick.app,
                    pick.option.mode.to_string(),
                    pick.option.power_nw
                );
            }
            println!("  total: {total:.0} nW (budget {budget:.0} nW)");
        }
        Err(e) => println!("  no feasible combination: {e}"),
    }

    Ok(())
}
