//! Table IV / Fig.4 demo: exploring the GeAr design space analytically.
//!
//! Enumerates every valid (R, P) configuration of an 11-bit GeAr adder,
//! prints accuracy (from the exact analytical error model — no simulation)
//! and LUT area, extracts the Pareto frontier, and answers the two
//! constraint queries from the paper's text.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use xlac::explore::{enumerate_gear_space, max_accuracy, min_area_with_accuracy, pareto_frontier};
use xlac::explore::gear_space::GearDesignPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 11;
    let space = enumerate_gear_space(n)?;

    println!("GeAr design space for N = {n} ({} configurations):\n", space.len());
    println!("{:<8} {:>3} {:>13} {:>7} {:>8}", "config", "k", "accuracy[%]", "LUTs", "delay");
    let mut sorted: Vec<&GearDesignPoint> = space.iter().collect();
    sorted.sort_by_key(|a| (a.r, a.p));
    for pt in &sorted {
        println!(
            "{:<8} {:>3} {:>13.6} {:>7} {:>8.1}",
            pt.label(),
            pt.sub_adders,
            pt.accuracy_percent,
            pt.lut_area,
            pt.delay
        );
    }

    // Pareto frontier over (area, −accuracy).
    let frontier = pareto_frontier(
        &space,
        &[&|pt: &GearDesignPoint| pt.lut_area as f64, &|pt| -pt.accuracy_percent],
    );
    let mut labels: Vec<String> = frontier.iter().map(|pt| pt.label()).collect();
    labels.sort();
    println!("\nPareto frontier (LUTs vs accuracy): {}", labels.join(", "));

    // The paper's two queries.
    let best = max_accuracy(&space)?;
    println!(
        "\nmax-accuracy pick:          {} ({:.4} %, {} LUTs)",
        best.label(),
        best.accuracy_percent,
        best.lut_area
    );
    let frugal = min_area_with_accuracy(&space, 90.0)?;
    println!(
        "min-area pick (>= 90 %):    {} ({:.4} %, {} LUTs)",
        frugal.label(),
        frugal.accuracy_percent,
        frugal.lut_area
    );

    Ok(())
}
