//! Quickstart: build approximate adders, inspect their error behaviour,
//! and let the analytical model rank configurations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xlac::adders::{Adder, FullAdderKind, GeArAdder, GearErrorModel, RippleCarryAdder};
use xlac::core::metrics::exhaustive_binary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== xlac quickstart ==\n");

    // --- 1. The Table III cells -------------------------------------------
    println!("1-bit full adders (Table III):");
    println!("{:<8} {:>9} {:>11} {:>12}", "cell", "area[GE]", "power[nW]", "error cases");
    for kind in FullAdderKind::ALL {
        let cost = kind.hw_cost();
        println!(
            "{:<8} {:>9.2} {:>11.1} {:>12}",
            kind.to_string(),
            cost.area_ge,
            cost.power_nw,
            kind.error_cases()
        );
    }

    // --- 2. A multi-bit adder with approximate LSBs ------------------------
    let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx3, 4)?;
    let stats = exhaustive_binary(8, 8, |a, b| a + b, |a, b| rca.add(a, b));
    println!(
        "\n{}: error rate {:.3}, mean error distance {:.2}, max {}",
        rca.name(),
        stats.error_rate,
        stats.mean_error_distance,
        stats.max_error_distance
    );

    // --- 3. GeAr: configure, add, correct ---------------------------------
    let gear = GeArAdder::new(12, 4, 4)?; // the paper's Fig.3 example
    let (a, b) = (0x0FF, 0x001);
    let plain = gear.add(a, b);
    let fixed = gear.add_with_correction(a, b, usize::MAX);
    println!(
        "\n{}: {a:#05x} + {b:#05x} = {:#05x} (exact {:#05x}, {} error detected)",
        gear.name(),
        plain.value,
        a + b,
        plain.errors_detected
    );
    println!(
        "  with correction: {:#05x} after {} pass(es)",
        fixed.value, fixed.correction_iterations
    );

    // --- 4. Rank configurations analytically -------------------------------
    println!("\nGeAr N=12 configurations ranked by the analytical error model:");
    println!("{:<8} {:>12} {:>10}", "config", "accuracy[%]", "LUTs");
    for (r, p) in [(1usize, 3usize), (2, 2), (4, 4), (2, 6), (4, 8)] {
        if let Ok(g) = GeArAdder::new(12, r, p) {
            let model = GearErrorModel::for_adder(&g);
            println!("{:<8} {:>12.4} {:>10}", format!("R{r}P{p}"), model.accuracy_percent(), g.lut_area());
        }
    }

    Ok(())
}
