//! Fig.10-style demo: data-dependent resilience of low-pass filtering on
//! approximate hardware.
//!
//! Filters the seven synthetic test images with the same approximate
//! 3×3 low-pass accelerator and reports per-image SSIM against the
//! accurately filtered reference — the spread across images is the
//! paper's data-dependent-resilience observation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example image_filter
//! ```

use xlac::adders::FullAdderKind;
use xlac::imaging::images::TestImage;
use xlac::imaging::resilience::{resilience_study, StudyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 64;
    println!("SSIM after 3x3 low-pass filtering on approximate hardware");
    println!("(approximate output scored against the accurate output)\n");

    for (kind, lsbs) in [(FullAdderKind::Apx2, 4usize), (FullAdderKind::Apx4, 4), (FullAdderKind::Apx5, 4)] {
        let rows = resilience_study(&TestImage::ALL, StudyConfig { size, kind, approx_lsbs: lsbs })?;
        println!("{kind} with {lsbs} approximate accumulator LSBs:");
        println!("  {:<14} {:>8} {:>14}", "image", "SSIM", "mean |diff|");
        for row in &rows {
            let bar_len = ((row.ssim.max(0.0)) * 40.0).round() as usize;
            println!(
                "  {:<14} {:>8.4} {:>14.2}  {}",
                row.image.name(),
                row.ssim,
                row.mean_abs_diff,
                "#".repeat(bar_len)
            );
        }
        let min = rows.iter().map(|r| r.ssim).fold(f64::INFINITY, f64::min);
        let max = rows.iter().map(|r| r.ssim).fold(f64::NEG_INFINITY, f64::max);
        println!("  spread: {:.4} .. {:.4} (Δ = {:.4})\n", min, max, max - min);
    }

    println!("The same circuit scores differently per image — quality is");
    println!("data-dependent, motivating run-time approximation control (§6.2).");
    Ok(())
}
