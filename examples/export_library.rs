//! Exports the approximate-component library as synthesizable structural
//! Verilog — the workspace's counterpart of the paper's open-source
//! VHDL/Verilog releases (`approxadderlib` / `lpACLib`).
//!
//! Writes one `.v` file per component into `hdl/` (created next to the
//! manifest):
//!
//! * the six 1-bit full adders of Table III,
//! * 8-bit ripple-carry adders with 4 approximate LSBs per cell kind,
//! * three GeAr configurations (including the paper's Fig.3 example),
//! * the 2×2 multipliers of Fig.5 with their configurable variants.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example export_library
//! ```

use std::fs;
use std::path::Path;
use xlac::adders::hw::{gear_netlist, ripple_netlist};
use xlac::adders::{FullAdderKind, GeArAdder, RippleCarryAdder};
use xlac::logic::verilog::to_verilog;
use xlac::multipliers::{ConfigurableMul2x2, Mul2x2Kind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new("hdl");
    fs::create_dir_all(dir)?;
    let mut manifest = Vec::new();

    // 1-bit cells.
    for kind in FullAdderKind::ALL {
        let nl = kind.structural_netlist();
        let path = dir.join(format!("{}.v", kind.to_string().to_lowercase()));
        fs::write(&path, to_verilog(&nl))?;
        manifest.push((path, nl.gate_count()));
    }

    // Multi-bit ripple adders with approximate LSBs.
    for kind in FullAdderKind::APPROXIMATE {
        let rca = RippleCarryAdder::with_approx_lsbs(8, kind, 4)?;
        let nl = ripple_netlist(&rca);
        let path = dir.join(format!("rca8_{}_lsb4.v", kind.to_string().to_lowercase()));
        fs::write(&path, to_verilog(&nl))?;
        manifest.push((path, nl.gate_count()));
    }

    // GeAr configurations.
    for (n, r, p) in [(12usize, 4usize, 4usize), (11, 1, 9), (16, 2, 6)] {
        let gear = GeArAdder::new(n, r, p)?;
        let nl = gear_netlist(&gear);
        let path = dir.join(format!("gear_n{n}_r{r}_p{p}.v"));
        fs::write(&path, to_verilog(&nl))?;
        manifest.push((path, nl.gate_count()));
    }

    // 2x2 multipliers.
    for kind in Mul2x2Kind::ALL {
        let nl = kind.netlist();
        let path = dir.join(format!("{}.v", kind.to_string().to_lowercase()));
        fs::write(&path, to_verilog(&nl))?;
        manifest.push((path, nl.gate_count()));
    }
    for core in [Mul2x2Kind::ApxSoA, Mul2x2Kind::ApxOur] {
        let cfg = ConfigurableMul2x2::new(core);
        let nl = cfg.netlist();
        let path = dir.join(format!("{}.v", cfg.name().to_lowercase()));
        fs::write(&path, to_verilog(&nl))?;
        manifest.push((path, nl.gate_count()));
    }

    println!("exported {} modules into {}/:", manifest.len(), dir.display());
    for (path, gates) in &manifest {
        println!("  {:<28} {:>4} gates", path.file_name().unwrap().to_string_lossy(), gates);
    }
    Ok(())
}
