//! # xlac — Cross-Layer Approximate Computing: From Logic to Architectures
//!
//! A Rust reproduction of the DAC 2016 invited paper by Shafique, Hafiz,
//! Rehman, El-Harouni and Henkel. The workspace implements the paper's
//! open-source component libraries (`approxadderlib` / `lpACLib`) and the
//! methodology built on them, from the logic layer up to accelerator
//! architectures:
//!
//! * [`adders`] — the IMPACT 1-bit approximate full adders (Table III),
//!   ripple-carry adders with approximate LSBs, and the **GeAr**
//!   accuracy-configurable adder with its analytical error models.
//! * [`multipliers`] — 2×2 approximate multipliers (Fig.5) and recursively
//!   composed multi-bit multipliers (Fig.6).
//! * [`logic`] — the gate-level substrate: netlists, simulation,
//!   Quine–McCluskey minimization, and the area/power/delay cost models that
//!   substitute for the paper's Synopsys DC + PrimeTime flow.
//! * [`accel`] — approximate accelerators (SAD, low-pass filter), the
//!   consolidated error correction unit (§6.1) and the approximation
//!   management unit.
//! * [`video`] / [`imaging`] — the HEVC-style motion-estimation case study
//!   (Fig.8/Fig.9) and the SSIM data-resilience study (Fig.10).
//! * [`sim`] — the bit-sliced 64-way simulation engine: word-parallel
//!   `*_x64` evaluators locked to the scalar golden models by a
//!   differential test suite, plus deterministic multi-threaded
//!   Monte-Carlo sweeps.
//! * [`explore`] — design-space exploration (Table IV / Fig.4).
//! * [`analysis`] — static error-bound propagation and netlist lint
//!   (the `xlac-lint` CI gate); see `DESIGN.md` §9.
//! * [`obs`] — the zero-dependency observability layer: counters, gauges,
//!   log2 histograms and span timers behind the `obs` feature (no-ops by
//!   default); see `DESIGN.md` §12.
//! * [`quality`], [`core`] — metrics and shared foundations.
//!
//! # Quickstart
//!
//! ```
//! use xlac::adders::{Adder, GeArAdder, RippleCarryAdder, FullAdderKind};
//!
//! # fn main() -> Result<(), xlac::core::XlacError> {
//! // The paper's example configuration: N=12, R=4, P=4.
//! let gear = GeArAdder::new(12, 4, 4)?;
//! let approx = gear.add(1234, 567).value;
//! let exact = (1234 + 567) & 0x1FFF;
//! assert!(approx == exact || approx != exact); // may or may not err
//!
//! // A ripple-carry adder whose 4 LSBs use the ApxFA1 cell.
//! let rca = RippleCarryAdder::with_approx_lsbs(8, FullAdderKind::Apx1, 4)?;
//! let _ = rca.add(100, 55);
//! # Ok(())
//! # }
//! ```
//!
//! See `DESIGN.md` for the per-experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use xlac_accel as accel;
pub use xlac_adders as adders;
pub use xlac_analysis as analysis;
pub use xlac_core as core;
pub use xlac_explore as explore;
pub use xlac_imaging as imaging;
pub use xlac_logic as logic;
pub use xlac_multipliers as multipliers;
pub use xlac_obs as obs;
pub use xlac_quality as quality;
pub use xlac_sim as sim;
pub use xlac_video as video;
