//! Reproducibility guarantees: the paper's open-sourcing goal is
//! "to facilitate reproducible results and research", so every randomized
//! workload in this workspace is seeded and every experiment must be
//! bit-deterministic run to run. These tests re-run the key pipelines
//! twice and require identical results.

use xlac::accel::sad::{SadAccelerator, SadVariant};
use xlac::adders::{Adder, FullAdderKind, GeArAdder, GearErrorModel, RippleCarryAdder};
use xlac::core::rng::{DefaultRng, Rng};
use xlac::multipliers::{Mul2x2Kind, Multiplier, RecursiveMultiplier, SumMode};
use xlac::imaging::images::TestImage;
use xlac::imaging::resilience::{resilience_study, StudyConfig};
use xlac::video::encoder::{Encoder, EncoderConfig};
use xlac::video::sequence::{SequenceConfig, SyntheticSequence};

#[test]
fn cell_characterization_is_deterministic() {
    // The OnceLock caches make repeat calls trivially equal; the real
    // check is that the underlying flow is seed-stable.
    for kind in FullAdderKind::ALL {
        let nl = kind.structural_netlist();
        let p1 = nl.switching_power(4096, 0xFA);
        let p2 = nl.switching_power(4096, 0xFA);
        assert_eq!(p1, p2, "{kind}");
    }
}

#[test]
fn monte_carlo_error_models_are_seed_stable() {
    let model = GearErrorModel::for_adder(&GeArAdder::new(16, 4, 4).unwrap());
    assert_eq!(model.monte_carlo(50_000, 7), model.monte_carlo(50_000, 7));
    assert_eq!(
        model.mean_error_distance_monte_carlo(50_000, 9),
        model.mean_error_distance_monte_carlo(50_000, 9)
    );
}

#[test]
fn video_pipeline_is_bit_deterministic() {
    let cfg = SequenceConfig::small_test();
    let seq1 = SyntheticSequence::generate(&cfg).unwrap();
    let seq2 = SyntheticSequence::generate(&cfg).unwrap();
    assert_eq!(seq1, seq2);
    let run = |seq: &SyntheticSequence| {
        Encoder::new(
            EncoderConfig::default(),
            SadAccelerator::new(64, SadVariant::ApxSad3, 4).unwrap(),
        )
        .unwrap()
        .encode(seq.frames())
        .unwrap()
    };
    let a = run(&seq1);
    let b = run(&seq2);
    assert_eq!(a.total_bits, b.total_bits);
    assert_eq!(a.frame_bits, b.frame_bits);
    assert_eq!(a.psnr_db, b.psnr_db);
}

#[test]
fn resilience_study_is_bit_deterministic() {
    let cfg = StudyConfig { size: 32, kind: FullAdderKind::Apx4, approx_lsbs: 4 };
    let a = resilience_study(&TestImage::ALL, cfg).unwrap();
    let b = resilience_study(&TestImage::ALL, cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn masking_analysis_is_seed_stable() {
    use xlac::accel::dataflow::Dataflow;
    use xlac::adders::RippleCarryAdder;
    let build = || {
        let mut g = Dataflow::new(2, 8);
        let apx = g.register_adder(Box::new(
            RippleCarryAdder::with_approx_lsbs(9, FullAdderKind::Apx3, 4).unwrap(),
        ));
        let s = g.add(apx, g.input(0), g.input(1)).unwrap();
        g.mark_output(s);
        g
    };
    let a = build().masking_analysis(200, 5).unwrap();
    let b = build().masking_analysis(200, 5).unwrap();
    assert_eq!(a, b);
}

/// A small seeded pipeline touching all three layers — an approximate
/// ripple adder, a recursive approximate multiplier and the SAD
/// accelerator — returning every intermediate and final output so any
/// divergence anywhere in the chain flips the comparison.
fn seeded_pipeline(seed: u64) -> Vec<u64> {
    let mut rng = DefaultRng::seed_from_u64(seed);
    let adder = RippleCarryAdder::with_approx_lsbs(12, FullAdderKind::Apx3, 4).unwrap();
    let mul = RecursiveMultiplier::new(
        8,
        Mul2x2Kind::ApxSoA,
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx4, lsbs: 3 },
    )
    .unwrap();
    let sad = SadAccelerator::new(64, SadVariant::ApxSad3, 4).unwrap();

    let mut out = Vec::new();
    for _ in 0..64 {
        let (a, b) = (rng.gen_range(0..1u64 << 12), rng.gen_range(0..1u64 << 12));
        out.push(adder.add(a, b));
        out.push(mul.mul(a & 0xFF, b & 0xFF));
    }
    let cur: Vec<u64> = (0..64).map(|_| rng.gen_range(0..256u64)).collect();
    let refb: Vec<u64> = (0..64).map(|_| rng.gen_range(0..256u64)).collect();
    out.push(sad.sad(&cur, &refb).unwrap());
    out
}

#[test]
fn seeded_pipeline_is_bit_identical_across_runs() {
    // Regression gate for the vendored RNG substrate: two runs of the
    // same seeded pipeline must agree on every single output word…
    assert_eq!(seeded_pipeline(0xDAC_2016), seeded_pipeline(0xDAC_2016));
    assert_eq!(seeded_pipeline(7), seeded_pipeline(7));
    // …and distinct seeds must actually change the input stream (a
    // constant-output RNG would pass the identity check above).
    assert_ne!(seeded_pipeline(0xDAC_2016), seeded_pipeline(7));
    assert_ne!(seeded_pipeline(1), seeded_pipeline(2));
}

#[test]
fn bit_sliced_sweeps_are_thread_count_invariant() {
    // The xlac-sim contract: chunk RNG streams are assigned before any
    // worker runs and chunk results merge in index order, so a sweep is
    // bitwise-identical for 1, 2 or 8 workers — including every float.
    use xlac::sim::{gear_sweep, multiplier_sweep, sad_sweep, SweepOptions};
    let base = SweepOptions::new(20_000, 0xDAC_2016).chunk(1024);

    let m = RecursiveMultiplier::new(8, Mul2x2Kind::ApxSoA, SumMode::Accurate).unwrap();
    let mul_one = multiplier_sweep(&m, &base.threads(1));
    assert_eq!(mul_one, multiplier_sweep(&m, &base.threads(2)));
    assert_eq!(mul_one, multiplier_sweep(&m, &base.threads(8)));

    let gear = GeArAdder::new(16, 4, 4).unwrap();
    let gear_one = gear_sweep(&gear, Some(1), &base.threads(1));
    assert_eq!(gear_one, gear_sweep(&gear, Some(1), &base.threads(2)));
    assert_eq!(gear_one, gear_sweep(&gear, Some(1), &base.threads(8)));

    let sad = SadAccelerator::new(16, SadVariant::ApxSad3, 4).unwrap();
    let opts = SweepOptions::new(4_000, 9).chunk(256);
    let sad_one = sad_sweep(&sad, &opts.threads(1));
    assert_eq!(sad_one, sad_sweep(&sad, &opts.threads(2)));
    assert_eq!(sad_one, sad_sweep(&sad, &opts.threads(8)));
}

#[test]
fn bit_sliced_sweeps_match_their_scalar_twins() {
    // The sweep drivers draw operands identically in both flavours, so
    // sliced == scalar is an exact equality — the engine-level seal on
    // top of the per-component differential suite.
    use xlac::sim::{
        gear_sweep, gear_sweep_scalar, multiplier_sweep, multiplier_sweep_scalar, SweepOptions,
    };
    let opts = SweepOptions::new(10_000, 0x51CED).chunk(1024);
    let m = RecursiveMultiplier::new(8, Mul2x2Kind::ApxOur, SumMode::Accurate).unwrap();
    assert_eq!(multiplier_sweep(&m, &opts), multiplier_sweep_scalar(&m, &opts));
    let gear = GeArAdder::aca_ii(16, 8).unwrap();
    for max_iterations in [None, Some(usize::MAX)] {
        assert_eq!(
            gear_sweep(&gear, max_iterations, &opts),
            gear_sweep_scalar(&gear, max_iterations, &opts)
        );
    }
}

#[test]
fn adaptive_controller_is_deterministic() {
    use xlac::video::adaptive::{AdaptiveEncoder, AdaptivePolicy};
    let seq = SyntheticSequence::generate(&SequenceConfig::small_test()).unwrap();
    let enc = AdaptiveEncoder::new(AdaptivePolicy::default()).unwrap();
    let a = enc.encode(seq.frames()).unwrap();
    let b = enc.encode(seq.frames()).unwrap();
    assert_eq!(a, b);
}
