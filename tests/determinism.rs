//! Reproducibility guarantees: the paper's open-sourcing goal is
//! "to facilitate reproducible results and research", so every randomized
//! workload in this workspace is seeded and every experiment must be
//! bit-deterministic run to run. These tests re-run the key pipelines
//! twice and require identical results.

use xlac::accel::sad::{SadAccelerator, SadVariant};
use xlac::adders::{FullAdderKind, GeArAdder, GearErrorModel};
use xlac::imaging::images::TestImage;
use xlac::imaging::resilience::{resilience_study, StudyConfig};
use xlac::video::encoder::{Encoder, EncoderConfig};
use xlac::video::sequence::{SequenceConfig, SyntheticSequence};

#[test]
fn cell_characterization_is_deterministic() {
    // The OnceLock caches make repeat calls trivially equal; the real
    // check is that the underlying flow is seed-stable.
    for kind in FullAdderKind::ALL {
        let nl = kind.structural_netlist();
        let p1 = nl.switching_power(4096, 0xFA);
        let p2 = nl.switching_power(4096, 0xFA);
        assert_eq!(p1, p2, "{kind}");
    }
}

#[test]
fn monte_carlo_error_models_are_seed_stable() {
    let model = GearErrorModel::for_adder(&GeArAdder::new(16, 4, 4).unwrap());
    assert_eq!(model.monte_carlo(50_000, 7), model.monte_carlo(50_000, 7));
    assert_eq!(
        model.mean_error_distance_monte_carlo(50_000, 9),
        model.mean_error_distance_monte_carlo(50_000, 9)
    );
}

#[test]
fn video_pipeline_is_bit_deterministic() {
    let cfg = SequenceConfig::small_test();
    let seq1 = SyntheticSequence::generate(&cfg).unwrap();
    let seq2 = SyntheticSequence::generate(&cfg).unwrap();
    assert_eq!(seq1, seq2);
    let run = |seq: &SyntheticSequence| {
        Encoder::new(
            EncoderConfig::default(),
            SadAccelerator::new(64, SadVariant::ApxSad3, 4).unwrap(),
        )
        .unwrap()
        .encode(seq.frames())
        .unwrap()
    };
    let a = run(&seq1);
    let b = run(&seq2);
    assert_eq!(a.total_bits, b.total_bits);
    assert_eq!(a.frame_bits, b.frame_bits);
    assert_eq!(a.psnr_db, b.psnr_db);
}

#[test]
fn resilience_study_is_bit_deterministic() {
    let cfg = StudyConfig { size: 32, kind: FullAdderKind::Apx4, approx_lsbs: 4 };
    let a = resilience_study(&TestImage::ALL, cfg).unwrap();
    let b = resilience_study(&TestImage::ALL, cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn masking_analysis_is_seed_stable() {
    use xlac::accel::dataflow::Dataflow;
    use xlac::adders::RippleCarryAdder;
    let build = || {
        let mut g = Dataflow::new(2, 8);
        let apx = g.register_adder(Box::new(
            RippleCarryAdder::with_approx_lsbs(9, FullAdderKind::Apx3, 4).unwrap(),
        ));
        let s = g.add(apx, g.input(0), g.input(1)).unwrap();
        g.mark_output(s);
        g
    };
    let a = build().masking_analysis(200, 5).unwrap();
    let b = build().masking_analysis(200, 5).unwrap();
    assert_eq!(a, b);
}

#[test]
fn adaptive_controller_is_deterministic() {
    use xlac::video::adaptive::{AdaptiveEncoder, AdaptivePolicy};
    let seq = SyntheticSequence::generate(&SequenceConfig::small_test()).unwrap();
    let enc = AdaptiveEncoder::new(AdaptivePolicy::default()).unwrap();
    let a = enc.encode(seq.frames()).unwrap();
    let b = enc.encode(seq.frames()).unwrap();
    assert_eq!(a, b);
}
