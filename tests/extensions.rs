//! Integration tests for the post-reproduction extensions: HDL export,
//! netlist optimization, elaboration, adaptive control, the divider and
//! the Sobel kernel — exercised across crate boundaries.

use xlac::adders::hw::{gear_detector_netlist, gear_netlist, pack_operands, ripple_netlist};
use xlac::adders::{Adder, ArrayDivider, FullAdderKind, GeArAdder, LoaAdder, RippleCarryAdder};
use xlac::imaging::images::TestImage;
use xlac::imaging::SobelAccelerator;
use xlac::logic::opt::optimize;
use xlac::logic::verilog::to_verilog;

/// Elaborate → optimize → export: the full mini-EDA pipeline stays
/// functionally equivalent at every stage.
#[test]
fn elaborate_optimize_export_pipeline() {
    let rca = RippleCarryAdder::with_approx_lsbs(6, FullAdderKind::Apx2, 3).unwrap();
    let raw = ripple_netlist(&rca);
    let opt = optimize(&raw);
    assert!(opt.gate_count() <= raw.gate_count());
    for a in 0u64..64 {
        for b in 0u64..64 {
            let packed = pack_operands(a, b, 6);
            assert_eq!(raw.eval(packed), rca.add(a, b), "raw {a}+{b}");
            assert_eq!(opt.eval(packed), rca.add(a, b), "optimized {a}+{b}");
        }
    }
    let v = to_verilog(&opt);
    assert!(v.contains("module RCA_N_6_3xApxFA2_"));
    assert!(v.contains("endmodule"));
}

/// The optimizer recovers the constant-carry savings of the first FA in
/// an elaborated chain: a measurable area improvement.
#[test]
fn optimizer_shrinks_elaborated_adders() {
    let rca = RippleCarryAdder::accurate(8);
    let raw = ripple_netlist(&rca);
    let opt = optimize(&raw);
    assert!(
        opt.area_ge() < raw.area_ge(),
        "optimized {} vs raw {}",
        opt.area_ge(),
        raw.area_ge()
    );
    // Functional check against arithmetic.
    for (a, b) in [(255u64, 255u64), (0, 0), (170, 85), (200, 57)] {
        assert_eq!(opt.eval(pack_operands(a, b, 8)), a + b);
    }
}

/// GeAr netlist + detector netlist together reproduce `add_flagged`
/// entirely in gates.
#[test]
fn gear_hardware_reproduces_behavioural_flags() {
    let gear = GeArAdder::new(10, 2, 2).unwrap();
    let value_nl = optimize(&gear_netlist(&gear));
    let det_nl = optimize(&gear_detector_netlist(&gear));
    for a in (0u64..1024).step_by(11) {
        for b in (0u64..1024).step_by(13) {
            let (out, offsets) = gear.add_flagged(a, b);
            let packed = pack_operands(a, b, 10);
            assert_eq!(value_nl.eval(packed), out.value);
            let hw_flags = det_nl.eval(packed);
            assert_eq!(hw_flags.count_ones() as usize, offsets.len(), "a={a} b={b}");
        }
    }
}

/// The divider composes with the rest of the stack: approximate-divider
/// quotients drive a dataflow graph.
#[test]
fn divider_inside_a_datapath() {
    let div = ArrayDivider::new(8, FullAdderKind::Apx1, 1).unwrap();
    // A per-pixel "brightness normalizer": out = pixel / gain.
    let img = TestImage::Gradient.render(16);
    let gain = 3u64;
    let normalized = img.map(|&p| div.divide(p, gain).unwrap().0);
    let exact = img.map(|&p| p / gain);
    let mean_err: f64 = normalized
        .iter()
        .zip(exact.iter())
        .map(|(&a, &b)| a.abs_diff(b) as f64)
        .sum::<f64>()
        / exact.len() as f64;
    // Dividers amplify LSB noise through the quotient-bit decisions (the
    // point of the divider's sensitivity test); even 1 approximate LSB
    // costs a few quotient units on average.
    assert!(mean_err > 0.0 && mean_err < 16.0, "mean quotient error {mean_err}");
}

/// Sobel on approximate hardware preserves edge structure across image
/// content (resilience extends beyond low-pass filtering).
#[test]
fn sobel_resilience_across_images() {
    let approx = SobelAccelerator::new(FullAdderKind::Apx2, 3).unwrap();
    for image in TestImage::ALL {
        let img = image.render(32);
        let exact = SobelAccelerator::apply_exact(&img).unwrap();
        let out = approx.apply(&img).unwrap();
        let agree = exact
            .iter()
            .zip(out.iter())
            .filter(|(&e, &a)| (e >= 128) == (a >= 128))
            .count();
        assert!(
            agree * 100 >= exact.len() * 90,
            "{image}: edge agreement {agree}/{}",
            exact.len()
        );
    }
}

/// Adaptive control end to end: the controller meets a tight SAD error
/// budget by climbing toward accuracy, and a loose budget by holding an
/// approximate mode — measured on the same content.
#[test]
fn adaptive_controller_responds_to_the_budget() {
    use xlac::accel::config::ApproxMode;
    use xlac::video::adaptive::{AdaptiveEncoder, AdaptivePolicy};
    use xlac::video::sequence::{SequenceConfig, SyntheticSequence};
    let seq = SyntheticSequence::generate(&SequenceConfig::small_test()).unwrap();

    let tight = AdaptivePolicy {
        sad_error_tolerance: 0.25,
        sample_every: 1,
        initial_mode: ApproxMode::Aggressive,
        ..AdaptivePolicy::default()
    };
    let tight_out = AdaptiveEncoder::new(tight).unwrap().encode(seq.frames()).unwrap();

    let loose = AdaptivePolicy {
        sad_error_tolerance: 1e9,
        sample_every: 1,
        initial_mode: ApproxMode::Aggressive,
        ..AdaptivePolicy::default()
    };
    let loose_out = AdaptiveEncoder::new(loose).unwrap().encode(seq.frames()).unwrap();

    assert!(
        tight_out.mean_power_nw > loose_out.mean_power_nw,
        "tight budget must spend more power: {} vs {}",
        tight_out.mean_power_nw,
        loose_out.mean_power_nw
    );
}

/// LOA from the extension set drives the SAD-style datapath via the Adder
/// trait like every other family.
#[test]
fn loa_in_a_subtractor_datapath() {
    use xlac::adders::Subtractor;
    let sub = Subtractor::new(LoaAdder::new(8, 3).unwrap());
    let mut total_err = 0u64;
    for a in (0u64..256).step_by(7) {
        for b in (0u64..256).step_by(11) {
            total_err += sub.abs_diff(a, b).abs_diff(a.abs_diff(b));
        }
    }
    let samples = (256 / 7 + 1) * (256 / 11 + 1);
    assert!((total_err as f64 / samples as f64) < 8.0);
}
