//! The paper's textual claims, asserted as fast regression tests.
//! (The bench binaries in `xlac-bench` regenerate the full tables; these
//! tests pin the headline facts so `cargo test` alone guards them.)

use xlac::accel::cec::{AdderCascade, CecUnit};
use xlac::adders::{FullAdderKind, GeArAdder, GearErrorModel};
use xlac::explore::{enumerate_gear_space, max_accuracy, min_area_with_accuracy};
use xlac::multipliers::{ConfigurableMul2x2, Mul2x2Kind};

/// Table III: error-case counts are exactly 0, 2, 2, 3, 3, 4.
#[test]
fn table3_error_case_counts() {
    let expected = [0usize, 2, 2, 3, 3, 4];
    for (kind, want) in FullAdderKind::ALL.iter().zip(expected) {
        assert_eq!(kind.error_cases(), want, "{kind}");
    }
}

/// Table III: every approximate cell undercuts the accurate cell on both
/// area and power, and ApxFA5 is free (pure wiring).
#[test]
fn table3_cost_ordering() {
    let acc = FullAdderKind::Accurate.hw_cost();
    for kind in FullAdderKind::APPROXIMATE {
        let c = kind.hw_cost();
        assert!(c.area_ge < acc.area_ge, "{kind}");
        assert!(c.power_nw < acc.power_nw, "{kind}");
    }
    assert_eq!(FullAdderKind::Apx5.hw_cost().area_ge, 0.0);
    assert_eq!(FullAdderKind::Apx5.hw_cost().power_nw, 0.0);
}

/// Section 4.2: "GeAr adder provides a reduced delay as compared to an
/// N-bit accurate adder since the carry propagation is now limited to L
/// bits only."
#[test]
fn gear_delay_is_limited_to_l_bits() {
    use xlac::adders::{Adder, RippleCarryAdder};
    let gear = GeArAdder::new(16, 4, 4).unwrap(); // L = 8
    let rca16 = RippleCarryAdder::accurate(16);
    let rca8 = RippleCarryAdder::accurate(8);
    let d = gear.hw_cost().delay;
    assert!(d < rca16.hw_cost().delay);
    assert!((d - rca8.hw_cost().delay).abs() < 1e-9, "delay equals an L-bit chain");
}

/// Table IV text: "For the constraint of maximum accuracy percentage,
/// GeAr (R = 1, P = 9) can be selected" — and the ≥90 % area query lands
/// on a mid-R configuration (R3P5 in the paper's LUT table; R4P3 under
/// our k·L LUT model, with R3P5 the best R=3 point — see EXPERIMENTS.md).
#[test]
fn table4_selection_queries() {
    let space = enumerate_gear_space(11).unwrap();
    assert_eq!(max_accuracy(&space).unwrap().label(), "R1P9");
    let pick = min_area_with_accuracy(&space, 90.0).unwrap();
    assert!(pick.accuracy_percent >= 90.0);
    assert!(pick.r >= 3, "a coarse-R config wins the area query");
    // R3P5 is the area-minimal R=3 configuration above 90 %.
    let r3: Vec<_> = space.iter().filter(|pt| pt.r == 3 && pt.accuracy_percent >= 90.0).collect();
    assert!(r3.iter().all(|pt| pt.lut_area >= 16));
    assert!(r3.iter().any(|pt| pt.label() == "R3P5"));
}

/// Section 4.2: the error model exists so configurations can be ranked
/// *without* exhaustive simulation — assert it is exact.
#[test]
fn gear_error_model_is_exact() {
    for (n, r, p) in [(8usize, 2usize, 2usize), (10, 2, 4), (12, 4, 4)] {
        let model = GearErrorModel::for_adder(&GeArAdder::new(n, r, p).unwrap());
        assert!((model.exact() - model.exhaustive()).abs() < 1e-9, "N={n} R={r} P={p}");
        assert!((model.exact() - model.inclusion_exclusion()).abs() < 1e-9);
    }
}

/// Fig.5: ApxMulSoA has 1 error case with max error 2; ApxMulOur has 3
/// error cases with max error 1; the configurable-our variant is cheaper
/// than the configurable-SoA variant (inverter vs adder correction).
#[test]
fn fig5_multiplier_claims() {
    assert_eq!(Mul2x2Kind::ApxSoA.error_cases(), 1);
    assert_eq!(Mul2x2Kind::ApxSoA.max_error_value(), 2);
    assert_eq!(Mul2x2Kind::ApxOur.error_cases(), 3);
    assert_eq!(Mul2x2Kind::ApxOur.max_error_value(), 1);
    let soa = ConfigurableMul2x2::new(Mul2x2Kind::ApxSoA).hw_cost();
    let our = ConfigurableMul2x2::new(Mul2x2Kind::ApxOur).hw_cost();
    assert!(our.area_ge < soa.area_ge);
}

/// Fig.5 use case: "In case the constraint on the maximum error value is
/// 1, such a design [SoA] cannot be used" — ApxMulOur is the only
/// approximate block satisfying a max-error-1 constraint.
#[test]
fn max_error_one_constraint_selects_our_design() {
    let candidates = [Mul2x2Kind::ApxSoA, Mul2x2Kind::ApxOur];
    let feasible: Vec<_> =
        candidates.iter().filter(|k| k.max_error_value() <= 1).collect();
    assert_eq!(feasible, vec![&Mul2x2Kind::ApxOur]);
}

/// Section 6.1: the consolidated error correction unit saves area versus
/// per-adder integrated EDC once the cascade is deep enough, and its
/// corrected output recovers most of the accumulated error.
#[test]
fn cec_claims() {
    let gear = GeArAdder::new(12, 4, 4).unwrap();
    let (edc, cec) = CecUnit::area_comparison(&gear, 8);
    assert!(cec < edc);

    use xlac::core::rng::{DefaultRng, Rng};
    let mut rng = DefaultRng::seed_from_u64(1);
    let cascade = AdderCascade::new(gear, 5).unwrap();
    let unit = CecUnit::new();
    let (mut raw, mut fixed) = (0u64, 0u64);
    for _ in 0..500 {
        let xs: Vec<u64> = (0..5).map(|_| rng.gen_range(0..0x300)).collect();
        let exact: u64 = xs.iter().sum();
        let run = cascade.accumulate(&xs).unwrap();
        raw += run.value.abs_diff(exact);
        fixed += unit.correct(&run).abs_diff(exact);
    }
    assert!(fixed * 4 < raw, "CEC recovers most error: {fixed} vs {raw}");
}

/// Fig.5, now *proven*: the exact symbolic engine re-derives the
/// error-case counts and maximum error values of both 2×2 blocks and
/// names the input minterms that realize them. ApxMulSoA errs on exactly
/// one input pair — `3 × 3 → 7` (off by 2) — while ApxMulOur errs on
/// exactly three pairs, each off by 1, which is why the max-error-1
/// constraint of the paper's use case admits only the latter.
#[test]
fn fig5_error_cases_proven_with_witness_minterms() {
    use xlac::analysis::symbolic::{exact_metrics, interleaved_operand_vars, twins, Bdd};

    for (kind, want_cases, want_wce) in
        [(Mul2x2Kind::ApxSoA, 1u128, 2u128), (Mul2x2Kind::ApxOur, 3, 1)]
    {
        let mut bdd = Bdd::new();
        let (a, b) = interleaved_operand_vars(&mut bdd, 2);
        let approx = twins::mul2x2(&mut bdd, kind, a[0], a[1], b[0], b[1]);
        let exact = twins::mul2x2(&mut bdd, Mul2x2Kind::Accurate, a[0], a[1], b[0], b[1]);
        let metrics = exact_metrics(&mut bdd, &approx, &exact, 4);

        assert_eq!(metrics.error_count, want_cases, "{kind}: error-case count");
        assert_eq!(metrics.worst_case_error, want_wce, "{kind}: worst-case error");

        // Enumerate every erring minterm from the any-difference miter
        // and check each against the scalar models.
        let mut miter = xlac::analysis::symbolic::FALSE;
        for (&x, &y) in approx.iter().zip(&exact) {
            let diff = bdd.xor(x, y);
            miter = bdd.or(miter, diff);
        }
        let minterms = bdd.all_sat(miter, 4);
        assert_eq!(minterms.len() as u128, want_cases, "{kind}: minterm enumeration");
        for m in &minterms {
            // Interleaved packing: a = bits 0, 2; b = bits 1, 3.
            let av = (m & 1) | ((m >> 1) & 2);
            let bv = ((m >> 1) & 1) | ((m >> 2) & 2);
            assert_ne!(kind.mul(av, bv), av * bv, "{kind}: {av} × {bv} must err");
        }
        // The worst-case witness is one of them and realizes the WCE.
        let w = metrics.worst_case_witness;
        assert!(minterms.contains(&w), "{kind}: witness is an erring minterm");
        let av = (w & 1) | ((w >> 1) & 2);
        let bv = ((w >> 1) & 1) | ((w >> 2) & 2);
        assert_eq!(
            u128::from(kind.mul(av, bv).abs_diff(av * bv)),
            want_wce,
            "{kind}: witness {av} × {bv} realizes the worst case"
        );
        if kind == Mul2x2Kind::ApxSoA {
            assert_eq!((av, bv), (3, 3), "the SoA block's only error is 3 × 3 → 7");
        }
    }
}

/// Table III, now *proven*: the error-case counts 0, 2, 2, 3, 3, 4 are
/// model counts of the any-difference miter between each approximate
/// cell and the accurate cell, and every counted row really errs in the
/// scalar model (variables a, b, cin at bits 0, 1, 2).
#[test]
fn table3_error_cases_proven_by_model_counting() {
    use xlac::analysis::symbolic::{twins, Bdd, FALSE};

    for kind in FullAdderKind::ALL {
        let mut bdd = Bdd::new();
        let vars: Vec<_> = (0..3).map(|i| bdd.var(i)).collect();
        let (s, c) = twins::full_adder(&mut bdd, kind, vars[0], vars[1], vars[2]);
        let (es, ec) =
            twins::full_adder(&mut bdd, FullAdderKind::Accurate, vars[0], vars[1], vars[2]);
        let ds = bdd.xor(s, es);
        let dc = bdd.xor(c, ec);
        let miter = bdd.or(ds, dc);

        assert_eq!(
            bdd.sat_count(miter, 3),
            kind.error_cases() as u128,
            "{kind}: Table III error-case count"
        );
        for row in bdd.all_sat(miter, 3) {
            let (a, b, cin) = (row & 1, (row >> 1) & 1, (row >> 2) & 1);
            assert_ne!(
                kind.eval_x64(a, b, cin),
                FullAdderKind::Accurate.eval_x64(a, b, cin),
                "{kind}: row a={a} b={b} cin={cin} must err"
            );
        }
        if kind == FullAdderKind::Accurate {
            assert_eq!(miter, FALSE, "the accurate cell proves equal to itself");
        }
    }
}

/// Section 5 composition claim: approximate multi-bit multipliers save
/// area and power at 4, 8 and 16 bits, and the savings grow with width.
#[test]
fn fig6_savings_grow_with_width() {
    use xlac::multipliers::{Multiplier, RecursiveMultiplier, SumMode};
    let mut last_saving = 0.0f64;
    for w in [4usize, 8, 16] {
        let exact =
            RecursiveMultiplier::new(w, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap().hw_cost();
        let approx = RecursiveMultiplier::new(
            w,
            Mul2x2Kind::ApxSoA,
            SumMode::ApproxLsbs { kind: FullAdderKind::Apx5, lsbs: 4 },
        )
        .unwrap()
        .hw_cost();
        let saving = exact.area_ge - approx.area_ge;
        assert!(saving > 0.0, "width {w}");
        assert!(saving > last_saving, "absolute savings must grow with width");
        last_saving = saving;
    }
}
