//! Property-based tests on the core invariants of the
//! approximate-arithmetic library, running on the in-house harness
//! (`xlac_core::check`) — seeded case generation, env-configurable case
//! counts (`XLAC_CHECK_CASES`, `XLAC_CHECK_SEED`) and shrinking with a
//! replayable failure seed (`XLAC_CHECK_REPRO`).
//!
//! Constrained inputs (e.g. valid GeAr `(n, r, p)` configurations) are
//! generated *by construction*; because shrinking explores the raw tuple
//! space, every constrained property re-validates its input and passes
//! vacuously on invalid tuples (the `prop_filter` idiom).

use xlac::adders::{Adder, FullAdderKind, GeArAdder, RippleCarryAdder, Subtractor};
use xlac::core::bits;
use xlac::core::check::{check, check_with, Config, DefaultRng, Rng};
use xlac::logic::qm::{eval_cover, minimize};
use xlac::logic::synth::{synthesize, verify_against};
use xlac::logic::TruthTable;
use xlac::multipliers::{Mul2x2Kind, Multiplier, RecursiveMultiplier, SumMode, WallaceMultiplier};
use xlac_core::{prop_assert, prop_assert_eq};

/// `true` when `(n, r, p)` is a valid GeAr configuration (as enforced by
/// `GeArAdder::new`) within the tested envelope.
fn valid_gear(n: usize, r: usize, p: usize) -> bool {
    let l = r + p;
    (4..=20).contains(&n) && (1..=6).contains(&r) && p <= 8 && l <= n && (n - l).is_multiple_of(r)
}

/// Draws a valid GeAr `(n, r, p)` configuration by construction:
/// pick the sub-adder shape first, then a compatible width `n ≤ 20`.
fn gear_config(rng: &mut DefaultRng) -> (usize, usize, usize) {
    let r = rng.gen_range(1..=6usize);
    let p = rng.gen_range(0..=8usize);
    let l = r + p;
    let extras = (20 - l) / r;
    let m_min = if l >= 4 { 0 } else { (4 - l).div_ceil(r) };
    let m = rng.gen_range(m_min..=extras.max(m_min));
    (l + m * r, r, p)
}

#[test]
fn gear_underestimates_only() {
    // GeAr never over-estimates: its only failure mode is a missed carry.
    check(
        "gear_underestimates_only",
        |rng| {
            let (n, r, p) = gear_config(rng);
            (n, r, p, rng.gen::<u64>(), rng.gen::<u64>())
        },
        |&(n, r, p, a, b)| {
            if !valid_gear(n, r, p) {
                return Ok(());
            }
            let gear = GeArAdder::new(n, r, p).unwrap();
            let (a, b) = (bits::truncate(a, n), bits::truncate(b, n));
            let out = gear.add(a, b);
            prop_assert!(out.value <= a + b, "GeAr({n},{r},{p}) over-estimated {a}+{b}");
            Ok(())
        },
    );
}

#[test]
fn gear_correction_is_exact() {
    // Full correction always reaches the exact sum, within k−1 passes.
    check(
        "gear_correction_is_exact",
        |rng| {
            let (n, r, p) = gear_config(rng);
            (n, r, p, rng.gen::<u64>(), rng.gen::<u64>())
        },
        |&(n, r, p, a, b)| {
            if !valid_gear(n, r, p) {
                return Ok(());
            }
            let gear = GeArAdder::new(n, r, p).unwrap();
            let (a, b) = (bits::truncate(a, n), bits::truncate(b, n));
            let out = gear.add_with_correction(a, b, usize::MAX);
            prop_assert_eq!(out.value, a + b);
            prop_assert!(out.correction_iterations < gear.sub_adder_count());
            Ok(())
        },
    );
}

#[test]
fn gear_silence_implies_exactness() {
    // Detection soundness: an undetected addition is exact.
    check(
        "gear_silence_implies_exactness",
        |rng| {
            let (n, r, p) = gear_config(rng);
            (n, r, p, rng.gen::<u64>(), rng.gen::<u64>())
        },
        |&(n, r, p, a, b)| {
            if !valid_gear(n, r, p) {
                return Ok(());
            }
            let gear = GeArAdder::new(n, r, p).unwrap();
            let (a, b) = (bits::truncate(a, n), bits::truncate(b, n));
            let out = gear.add(a, b);
            if out.errors_detected == 0 {
                prop_assert_eq!(out.value, a + b);
            }
            Ok(())
        },
    );
}

#[test]
fn accurate_ripple_is_plus() {
    // An all-accurate ripple chain equals `+` for every width.
    check(
        "accurate_ripple_is_plus",
        |rng| (rng.gen_range(1..=32usize), rng.gen::<u64>(), rng.gen::<u64>()),
        |&(width, a, b)| {
            if !(1..=32).contains(&width) {
                return Ok(());
            }
            let rca = RippleCarryAdder::accurate(width);
            let (a, b) = (bits::truncate(a, width), bits::truncate(b, width));
            prop_assert_eq!(rca.add(a, b), a + b);
            Ok(())
        },
    );
}

#[test]
fn ripple_error_is_prefix_bounded() {
    // Approximating k LSBs bounds the adder error below 2^(k+1).
    check(
        "ripple_error_is_prefix_bounded",
        |rng| {
            let kind_idx = rng.gen_range(0..FullAdderKind::APPROXIMATE.len());
            (kind_idx, rng.gen_range(0..=6usize), rng.gen::<u64>(), rng.gen::<u64>())
        },
        |&(kind_idx, k, a, b)| {
            if kind_idx >= FullAdderKind::APPROXIMATE.len() || k > 6 {
                return Ok(());
            }
            let kind = FullAdderKind::APPROXIMATE[kind_idx];
            let rca = RippleCarryAdder::with_approx_lsbs(12, kind, k).unwrap();
            let (a, b) = (bits::truncate(a, 12), bits::truncate(b, 12));
            let err = rca.add(a, b).abs_diff(a + b);
            prop_assert!(err < 1u64 << (k + 1), "{} err {} with {} LSBs", kind, err, k);
            Ok(())
        },
    );
}

#[test]
fn exact_subtractor_is_abs_diff() {
    // The subtractor over an exact adder is |a − b| with correct sign.
    check(
        "exact_subtractor_is_abs_diff",
        |rng| (rng.gen_range(1..=16usize), rng.gen::<u64>(), rng.gen::<u64>()),
        |&(width, a, b)| {
            if !(1..=16).contains(&width) {
                return Ok(());
            }
            let sub = Subtractor::new(xlac::adders::AccurateAdder::new(width));
            let (a, b) = (bits::truncate(a, width), bits::truncate(b, width));
            let (mag, ge) = sub.sub(a, b);
            prop_assert_eq!(mag, a.abs_diff(b));
            prop_assert_eq!(ge, a >= b);
            Ok(())
        },
    );
}

#[test]
fn qm_cover_is_equivalent() {
    // QM minimization always reproduces the specified function.
    check(
        "qm_cover_is_equivalent",
        |rng| (rng.gen_range(1..=6usize), rng.gen::<u64>()),
        |&(n, on_set)| {
            if !(1..=6).contains(&n) {
                return Ok(());
            }
            let limit = 1u64 << n;
            let minterms: Vec<u64> =
                (0..limit).filter(|&m| (on_set >> (m % 64)) & 1 == 1).collect();
            let cover = minimize(n, &minterms);
            for x in 0..limit {
                let expect = u64::from(minterms.contains(&x));
                prop_assert_eq!(eval_cover(&cover, x), expect, "minterm {} of n={}", x, n);
            }
            Ok(())
        },
    );
}

#[test]
fn synthesis_preserves_function() {
    // Synthesized netlists are functionally equivalent to their tables.
    check(
        "synthesis_preserves_function",
        |rng| (rng.gen_range(1..=5usize), rng.gen_range(1..=3usize), rng.gen::<u64>()),
        |&(n, outs, seed)| {
            if !(1..=5).contains(&n) || !(1..=3).contains(&outs) {
                return Ok(());
            }
            let mut rng = DefaultRng::seed_from_u64(seed);
            let rows: Vec<u64> =
                (0..(1u64 << n)).map(|_| rng.gen::<u64>() & ((1 << outs) - 1)).collect();
            let tt = TruthTable::from_rows(n, outs, rows).unwrap();
            let nl = synthesize("prop", &tt).unwrap();
            prop_assert_eq!(verify_against(&nl, &tt), 0);
            Ok(())
        },
    );
}

#[test]
fn mul2x2_error_bounds() {
    // Both approximate 2×2 multiplier designs respect their published
    // worst-case error bound at every operand pair.
    check(
        "mul2x2_error_bounds",
        |rng| (rng.gen_range(0..4u64), rng.gen_range(0..4u64)),
        |&(a, b)| {
            if a > 3 || b > 3 {
                return Ok(());
            }
            prop_assert!(Mul2x2Kind::ApxSoA.mul(a, b).abs_diff(a * b) <= 2);
            prop_assert!(Mul2x2Kind::ApxOur.mul(a, b).abs_diff(a * b) <= 1);
            Ok(())
        },
    );
}

#[test]
fn accurate_recursive_multiplier_is_exact() {
    // Recursive multipliers with accurate blocks and accurate summation
    // are exact at every power-of-two width.
    check(
        "accurate_recursive_multiplier_is_exact",
        |rng| {
            let w = [2usize, 4, 8, 16][rng.gen_range(0..4usize)];
            (w, rng.gen::<u64>(), rng.gen::<u64>())
        },
        |&(w, a, b)| {
            if ![2, 4, 8, 16].contains(&w) {
                return Ok(());
            }
            let m = RecursiveMultiplier::new(w, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap();
            let (a, b) = (bits::truncate(a, w), bits::truncate(b, w));
            prop_assert_eq!(m.mul(a, b), a * b);
            Ok(())
        },
    );
}

#[test]
fn accurate_wallace_is_exact() {
    // The exact Wallace tree agrees with `*`.
    check(
        "accurate_wallace_is_exact",
        |rng| (rng.gen_range(2..=10usize), rng.gen::<u64>(), rng.gen::<u64>()),
        |&(w, a, b)| {
            if !(2..=10).contains(&w) {
                return Ok(());
            }
            let m = WallaceMultiplier::new(w, FullAdderKind::Accurate, 0).unwrap();
            let (a, b) = (bits::truncate(a, w), bits::truncate(b, w));
            prop_assert_eq!(m.mul(a, b), a * b);
            Ok(())
        },
    );
}

#[test]
fn ssim_identity_and_symmetry() {
    // SSIM is 1 exactly on identical images and symmetric on distinct
    // ones.
    check(
        "ssim_identity_and_symmetry",
        |rng| rng.gen::<u64>(),
        |&seed| {
            let mut rng = DefaultRng::seed_from_u64(seed);
            let a = xlac::core::Grid::from_fn(16, 16, |_, _| rng.gen_range(0.0..255.0));
            let b = xlac::core::Grid::from_fn(16, 16, |_, _| rng.gen_range(0.0..255.0));
            let same = xlac::quality::ssim(&a, &a).unwrap();
            prop_assert!((same - 1.0).abs() < 1e-9);
            let ab = xlac::quality::ssim(&a, &b).unwrap();
            let ba = xlac::quality::ssim(&b, &a).unwrap();
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!(ab <= 1.0 + 1e-9);
            Ok(())
        },
    );
}

#[test]
fn bit_field_roundtrip() {
    // Bit-field insert/extract round-trips for arbitrary fields.
    check(
        "bit_field_roundtrip",
        |rng| {
            (rng.gen::<u64>(), rng.gen_range(0..60usize), rng.gen_range(1..=4usize), rng.gen::<u64>())
        },
        |&(value, lo, len, bits_in)| {
            if lo >= 60 || !(1..=4).contains(&len) {
                return Ok(());
            }
            let w = bits::with_field(value, lo, len, bits_in);
            prop_assert_eq!(bits::field(w, lo, len), bits::truncate(bits_in, len));
            // Bits outside the field are untouched.
            let mask = bits::mask(len) << lo;
            prop_assert_eq!(w & !mask, value & !mask);
            Ok(())
        },
    );
}

#[test]
fn signed_roundtrip() {
    // Two's-complement signed round-trip at every width.
    check(
        "signed_roundtrip",
        |rng| (rng.gen_range(1..=64usize), rng.gen::<u64>()),
        |&(width, v)| {
            if !(1..=64).contains(&width) {
                return Ok(());
            }
            let v = bits::truncate(v, width);
            prop_assert_eq!(bits::from_signed(bits::to_signed(v, width), width), v);
            Ok(())
        },
    );
}

#[test]
fn divider_euclidean_invariant() {
    // The exact array divider satisfies the Euclidean invariant.
    check(
        "divider_euclidean_invariant",
        |rng| (rng.gen::<u64>(), rng.gen_range(1..256u64)),
        |&(n, d)| {
            let div = xlac::adders::ArrayDivider::accurate(8).unwrap();
            let n = bits::truncate(n, 8);
            let d = bits::truncate(d, 8).max(1);
            let (q, r) = div.divide(n, d).unwrap();
            prop_assert_eq!(q * d + r, n);
            prop_assert!(r < d);
            Ok(())
        },
    );
}

#[test]
fn loa_error_is_lower_part_bounded() {
    // LOA errors are confined below the lower-part boundary.
    check(
        "loa_error_is_lower_part_bounded",
        |rng| (rng.gen_range(0..=8usize), rng.gen::<u64>(), rng.gen::<u64>()),
        |&(lower, a, b)| {
            if lower > 8 {
                return Ok(());
            }
            let loa = xlac::adders::LoaAdder::new(12, lower).unwrap();
            let (a, b) = (bits::truncate(a, 12), bits::truncate(b, 12));
            let err = loa.add(a, b).abs_diff(a + b);
            prop_assert!(err < 1u64 << (lower + 1), "err {} with {} lower bits", err, lower);
            Ok(())
        },
    );
}

#[test]
fn truncated_adder_error_bound() {
    // The truncated adder's error is exactly the difference between the
    // forced low bits and the discarded true low sum plus lost carry.
    check(
        "truncated_adder_error_bound",
        |rng| (rng.gen_range(0..=8usize), rng.gen::<u64>(), rng.gen::<u64>()),
        |&(t, a, b)| {
            if t > 8 {
                return Ok(());
            }
            let tra = xlac::adders::TruncatedAdder::new(12, t).unwrap();
            let (a, b) = (bits::truncate(a, 12), bits::truncate(b, 12));
            let err = tra.add(a, b).abs_diff(a + b);
            prop_assert!(err < 1u64 << (t + 1));
            Ok(())
        },
    );
}

#[test]
fn truncated_multiplier_mass_bound() {
    // Truncated-multiplier errors never exceed the dropped-column mass.
    check(
        "truncated_multiplier_mass_bound",
        |rng| (rng.gen_range(0..=8usize), rng.gen::<u64>(), rng.gen::<u64>()),
        |&(k, a, b)| {
            if k > 8 {
                return Ok(());
            }
            use xlac::multipliers::TruncatedMultiplier;
            let m = TruncatedMultiplier::new(8, k, false).unwrap();
            let (a, b) = (bits::truncate(a, 8), bits::truncate(b, 8));
            let bound: u64 = (0..k).map(|c| ((c as u64 + 1).min(8)) << c).sum();
            prop_assert!(m.mul(a, b).abs_diff(a * b) <= bound);
            Ok(())
        },
    );
}

#[test]
fn optimizer_preserves_random_functions() {
    // Netlist optimization preserves the function of synthesized logic.
    check(
        "optimizer_preserves_random_functions",
        |rng| (rng.gen_range(2..=5usize), rng.gen::<u64>()),
        |&(n, seed)| {
            if !(2..=5).contains(&n) {
                return Ok(());
            }
            use xlac::logic::equiv::check_equivalence;
            use xlac::logic::opt::optimize;
            let mut rng = DefaultRng::seed_from_u64(seed);
            let rows: Vec<u64> = (0..(1u64 << n)).map(|_| rng.gen::<u64>() & 0b11).collect();
            let tt = TruthTable::from_rows(n, 2, rows).unwrap();
            let nl = synthesize("p", &tt).unwrap();
            let opt = optimize(&nl);
            prop_assert_eq!(check_equivalence(&nl, &opt).unwrap(), None);
            prop_assert!(opt.gate_count() <= nl.gate_count());
            Ok(())
        },
    );
}

#[test]
fn elaboration_matches_behaviour() {
    // Elaborated ripple netlists equal their behavioural models for any
    // cell mix.
    check(
        "elaboration_matches_behaviour",
        |rng| {
            let kind_idx = rng.gen_range(0..FullAdderKind::ALL.len());
            (kind_idx, rng.gen_range(0..=5usize), rng.gen::<u64>(), rng.gen::<u64>())
        },
        |&(kind_idx, lsbs, a, b)| {
            if kind_idx >= FullAdderKind::ALL.len() {
                return Ok(());
            }
            use xlac::adders::hw::{pack_operands, ripple_netlist};
            let kind = FullAdderKind::ALL[kind_idx];
            let rca = RippleCarryAdder::with_approx_lsbs(5, kind, lsbs.min(5)).unwrap();
            let nl = ripple_netlist(&rca);
            let (a, b) = (bits::truncate(a, 5), bits::truncate(b, 5));
            prop_assert_eq!(nl.eval(pack_operands(a, b, 5)), rca.add(a, b));
            Ok(())
        },
    );
}

#[test]
fn bd_rate_scaling_identity() {
    // BD-rate of a curve against itself is zero, and scaling the rate by
    // a constant factor recovers that factor.
    check(
        "bd_rate_scaling_identity",
        |rng| rng.gen_range(1.01f64..2.0),
        |&factor| {
            if !(1.01..2.0).contains(&factor) {
                return Ok(());
            }
            use xlac::video::rd::{bd_rate, RdPoint};
            let base: Vec<RdPoint> = (0..4)
                .map(|i| RdPoint { bits: 1000.0 * (1 << i) as f64, psnr_db: 30.0 + 3.0 * i as f64 })
                .collect();
            let scaled: Vec<RdPoint> =
                base.iter().map(|p| RdPoint { bits: p.bits * factor, ..*p }).collect();
            let bd = bd_rate(&base, &scaled).unwrap();
            prop_assert!((bd - (factor - 1.0) * 100.0).abs() < 0.5);
            prop_assert!(bd_rate(&base, &base).unwrap().abs() < 1e-9);
            Ok(())
        },
    );
}

#[test]
fn signed_multiplier_is_odd() {
    // The signed multiplier is odd in each argument (for a core without
    // constant compensation — a compensated core is intentionally
    // non-zero at zero, breaking oddness there).
    check(
        "signed_multiplier_is_odd",
        |rng| (rng.gen_range(-127..=127i64), rng.gen_range(-127..=127i64)),
        |&(a, b)| {
            if !(-127..=127).contains(&a) || !(-127..=127).contains(&b) {
                return Ok(());
            }
            use xlac::multipliers::{SignedMultiplier, TruncatedMultiplier};
            let m = SignedMultiplier::new(TruncatedMultiplier::new(8, 4, false).unwrap());
            prop_assert_eq!(m.mul_signed(a, b), m.mul_signed(-a, -b));
            prop_assert_eq!(m.mul_signed(-a, b), -m.mul_signed(a, b));
            Ok(())
        },
    );
}

#[test]
fn gear_error_model_matches_simulation() {
    // The analytical GeAr error model matches Monte-Carlo simulation for
    // random configurations (heavier test: fewer cases).
    let config = Config::from_env();
    let config = config.with_cases(config.cases.min(64));
    check_with(
        "gear_error_model_matches_simulation",
        &config,
        gear_config,
        |&(n, r, p)| {
            if !valid_gear(n, r, p) {
                return Ok(());
            }
            let gear = GeArAdder::new(n, r, p).unwrap();
            let model = xlac::adders::GearErrorModel::for_adder(&gear);
            let analytic = model.exact();
            let mc = model.monte_carlo(60_000, 0xABCD);
            prop_assert!(
                (analytic - mc).abs() < 0.02,
                "N={} R={} P={}: {} vs {}",
                n,
                r,
                p,
                analytic,
                mc
            );
            Ok(())
        },
    );
}

#[test]
fn bit_sliced_adders_are_lane_independent() {
    // Permuting the input lanes of a bit-sliced evaluation permutes the
    // output lanes identically: no state leaks across lane boundaries.
    use xlac::adders::AdderX64;
    use xlac::core::lanes;
    check(
        "bit_sliced_adders_are_lane_independent",
        |rng| (rng.gen::<u64>(), rng.gen_range(0..FullAdderKind::ALL.len())),
        |&(seed, kind_idx)| {
            if kind_idx >= FullAdderKind::ALL.len() {
                return Ok(());
            }
            let mut rng = DefaultRng::seed_from_u64(seed);
            let w = 12usize;
            let mut a = [0u64; 64];
            let mut b = [0u64; 64];
            rng.fill_u64(&mut a);
            rng.fill_u64(&mut b);
            let a = a.map(|v| bits::truncate(v, w));
            let b = b.map(|v| bits::truncate(v, w));
            let mut perm = [0usize; 64];
            for (i, p) in perm.iter_mut().enumerate() {
                *p = i;
            }
            rng.shuffle(&mut perm);
            let kind = FullAdderKind::ALL[kind_idx];
            let adder = RippleCarryAdder::with_approx_lsbs(w, kind, w / 2).unwrap();
            let base = adder.add_x64(&lanes::to_planes(&a, w), &lanes::to_planes(&b, w));
            // Evaluate on permuted inputs: the output must be the base
            // output under the same permutation.
            let pa = lanes::permute_lanes(&lanes::to_planes(&a, w), &perm);
            let pb = lanes::permute_lanes(&lanes::to_planes(&b, w), &perm);
            prop_assert_eq!(adder.add_x64(&pa, &pb), lanes::permute_lanes(&base, &perm));
            Ok(())
        },
    );
}

#[test]
fn bit_sliced_multipliers_are_lane_independent() {
    use xlac::core::lanes;
    use xlac::multipliers::MultiplierX64;
    check(
        "bit_sliced_multipliers_are_lane_independent",
        |rng| (rng.gen::<u64>(), rng.gen_range(0..64usize)),
        |&(seed, rot)| {
            if rot >= 64 {
                return Ok(());
            }
            let mut rng = DefaultRng::seed_from_u64(seed);
            let w = 8usize;
            let mut a = [0u64; 64];
            let mut b = [0u64; 64];
            rng.fill_u64(&mut a);
            rng.fill_u64(&mut b);
            let a = a.map(|v| bits::truncate(v, w));
            let b = b.map(|v| bits::truncate(v, w));
            // A rotation is the cheapest interesting permutation to draw
            // by construction.
            let mut perm = [0usize; 64];
            for (i, p) in perm.iter_mut().enumerate() {
                *p = (i + rot) % 64;
            }
            let m = RecursiveMultiplier::new(
                w,
                Mul2x2Kind::ApxSoA,
                SumMode::ApproxLsbs { kind: FullAdderKind::Apx1, lsbs: 2 },
            )
            .unwrap();
            let base = m.mul_x64(&lanes::to_planes(&a, w), &lanes::to_planes(&b, w));
            let pa = lanes::permute_lanes(&lanes::to_planes(&a, w), &perm);
            let pb = lanes::permute_lanes(&lanes::to_planes(&b, w), &perm);
            prop_assert_eq!(m.mul_x64(&pa, &pb), lanes::permute_lanes(&base, &perm));
            Ok(())
        },
    );
}
