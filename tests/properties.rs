//! Property-based tests (proptest) on the core invariants of the
//! approximate-arithmetic library.

use proptest::prelude::*;
use xlac::adders::{Adder, FullAdderKind, GeArAdder, RippleCarryAdder, Subtractor};
use xlac::core::bits;
use xlac::logic::qm::{eval_cover, minimize};
use xlac::logic::synth::{synthesize, verify_against};
use xlac::logic::TruthTable;
use xlac::multipliers::{Mul2x2Kind, Multiplier, RecursiveMultiplier, SumMode, WallaceMultiplier};

/// A strategy for valid GeAr (n, r, p) configurations.
fn gear_config() -> impl Strategy<Value = (usize, usize, usize)> {
    (4usize..=20, 1usize..=6, 0usize..=8).prop_filter_map("valid GeAr config", |(n, r, p)| {
        let l = r + p;
        if l <= n && (n - l) % r == 0 {
            Some((n, r, p))
        } else {
            None
        }
    })
}

proptest! {
    /// GeAr never over-estimates: its only failure mode is a missed carry.
    #[test]
    fn gear_underestimates_only((n, r, p) in gear_config(), a in any::<u64>(), b in any::<u64>()) {
        let gear = GeArAdder::new(n, r, p).unwrap();
        let (a, b) = (bits::truncate(a, n), bits::truncate(b, n));
        let out = gear.add(a, b);
        prop_assert!(out.value <= a + b);
    }

    /// Full correction always reaches the exact sum, within k−1 passes.
    #[test]
    fn gear_correction_is_exact((n, r, p) in gear_config(), a in any::<u64>(), b in any::<u64>()) {
        let gear = GeArAdder::new(n, r, p).unwrap();
        let (a, b) = (bits::truncate(a, n), bits::truncate(b, n));
        let out = gear.add_with_correction(a, b, usize::MAX);
        prop_assert_eq!(out.value, a + b);
        prop_assert!(out.correction_iterations < gear.sub_adder_count());
    }

    /// Detection soundness: an undetected addition is exact.
    #[test]
    fn gear_silence_implies_exactness((n, r, p) in gear_config(), a in any::<u64>(), b in any::<u64>()) {
        let gear = GeArAdder::new(n, r, p).unwrap();
        let (a, b) = (bits::truncate(a, n), bits::truncate(b, n));
        let out = gear.add(a, b);
        if out.errors_detected == 0 {
            prop_assert_eq!(out.value, a + b);
        }
    }

    /// An all-accurate ripple chain equals `+` for every width.
    #[test]
    fn accurate_ripple_is_plus(width in 1usize..=32, a in any::<u64>(), b in any::<u64>()) {
        let rca = RippleCarryAdder::accurate(width);
        let (a, b) = (bits::truncate(a, width), bits::truncate(b, width));
        prop_assert_eq!(rca.add(a, b), a + b);
    }

    /// Approximating k LSBs bounds the adder error below 2^(k+1).
    #[test]
    fn ripple_error_is_prefix_bounded(
        kind in prop::sample::select(FullAdderKind::APPROXIMATE.to_vec()),
        k in 0usize..=6,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let rca = RippleCarryAdder::with_approx_lsbs(12, kind, k).unwrap();
        let (a, b) = (bits::truncate(a, 12), bits::truncate(b, 12));
        let err = rca.add(a, b).abs_diff(a + b);
        prop_assert!(err < 1u64 << (k + 1), "{} err {} with {} LSBs", kind, err, k);
    }

    /// The subtractor over an exact adder is |a − b| with correct sign.
    #[test]
    fn exact_subtractor_is_abs_diff(width in 1usize..=16, a in any::<u64>(), b in any::<u64>()) {
        let sub = Subtractor::new(xlac::adders::AccurateAdder::new(width));
        let (a, b) = (bits::truncate(a, width), bits::truncate(b, width));
        let (mag, ge) = sub.sub(a, b);
        prop_assert_eq!(mag, a.abs_diff(b));
        prop_assert_eq!(ge, a >= b);
    }

    /// QM minimization always reproduces the specified function.
    #[test]
    fn qm_cover_is_equivalent(n in 1usize..=6, on_set in any::<u64>()) {
        let limit = 1u64 << n;
        let minterms: Vec<u64> = (0..limit).filter(|&m| (on_set >> (m % 64)) & 1 == 1).collect();
        let cover = minimize(n, &minterms);
        for x in 0..limit {
            let expect = u64::from(minterms.contains(&x));
            prop_assert_eq!(eval_cover(&cover, x), expect);
        }
    }

    /// Synthesized netlists are functionally equivalent to their tables.
    #[test]
    fn synthesis_preserves_function(n in 1usize..=5, outs in 1usize..=3, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<u64> = (0..(1u64 << n)).map(|_| rng.gen::<u64>() & ((1 << outs) - 1)).collect();
        let tt = TruthTable::from_rows(n, outs, rows).unwrap();
        let nl = synthesize("prop", &tt).unwrap();
        prop_assert_eq!(verify_against(&nl, &tt), 0);
    }

    /// Both approximate 2×2 multiplier designs respect their published
    /// worst-case error bound at every operand pair.
    #[test]
    fn mul2x2_error_bounds(a in 0u64..4, b in 0u64..4) {
        prop_assert!(Mul2x2Kind::ApxSoA.mul(a, b).abs_diff(a * b) <= 2);
        prop_assert!(Mul2x2Kind::ApxOur.mul(a, b).abs_diff(a * b) <= 1);
    }

    /// Recursive multipliers with accurate blocks and accurate summation
    /// are exact at every power-of-two width.
    #[test]
    fn accurate_recursive_multiplier_is_exact(
        w in prop::sample::select(vec![2usize, 4, 8, 16]),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let m = RecursiveMultiplier::new(w, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap();
        let (a, b) = (bits::truncate(a, w), bits::truncate(b, w));
        prop_assert_eq!(m.mul(a, b), a * b);
    }

    /// The exact Wallace tree agrees with `*`.
    #[test]
    fn accurate_wallace_is_exact(w in 2usize..=10, a in any::<u64>(), b in any::<u64>()) {
        let m = WallaceMultiplier::new(w, FullAdderKind::Accurate, 0).unwrap();
        let (a, b) = (bits::truncate(a, w), bits::truncate(b, w));
        prop_assert_eq!(m.mul(a, b), a * b);
    }

    /// SSIM is 1 exactly on identical images and symmetric on distinct
    /// ones.
    #[test]
    fn ssim_identity_and_symmetry(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a = xlac::core::Grid::from_fn(16, 16, |_, _| rng.gen_range(0.0..255.0));
        let b = xlac::core::Grid::from_fn(16, 16, |_, _| rng.gen_range(0.0..255.0));
        let same = xlac::quality::ssim(&a, &a).unwrap();
        prop_assert!((same - 1.0).abs() < 1e-9);
        let ab = xlac::quality::ssim(&a, &b).unwrap();
        let ba = xlac::quality::ssim(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab <= 1.0 + 1e-9);
    }

    /// Bit-field insert/extract round-trips for arbitrary fields.
    #[test]
    fn bit_field_roundtrip(value in any::<u64>(), lo in 0usize..60, len in 1usize..=4, bits_in in any::<u64>()) {
        let w = bits::with_field(value, lo, len, bits_in);
        prop_assert_eq!(bits::field(w, lo, len), bits::truncate(bits_in, len));
        // Bits outside the field are untouched.
        let mask = bits::mask(len) << lo;
        prop_assert_eq!(w & !mask, value & !mask);
    }

    /// Two's-complement signed round-trip at every width.
    #[test]
    fn signed_roundtrip(width in 1usize..=64, v in any::<u64>()) {
        let v = bits::truncate(v, width);
        prop_assert_eq!(bits::from_signed(bits::to_signed(v, width), width), v);
    }
}

proptest! {
    /// The exact array divider satisfies the Euclidean invariant.
    #[test]
    fn divider_euclidean_invariant(n in any::<u64>(), d in 1u64..256) {
        let div = xlac::adders::ArrayDivider::accurate(8).unwrap();
        let n = bits::truncate(n, 8);
        let d = bits::truncate(d, 8).max(1);
        let (q, r) = div.divide(n, d).unwrap();
        prop_assert_eq!(q * d + r, n);
        prop_assert!(r < d);
    }

    /// LOA errors are confined below the lower-part boundary.
    #[test]
    fn loa_error_is_lower_part_bounded(lower in 0usize..=8, a in any::<u64>(), b in any::<u64>()) {
        let loa = xlac::adders::LoaAdder::new(12, lower).unwrap();
        let (a, b) = (bits::truncate(a, 12), bits::truncate(b, 12));
        let err = loa.add(a, b).abs_diff(a + b);
        prop_assert!(err < 1u64 << (lower + 1), "err {} with {} lower bits", err, lower);
    }

    /// The truncated adder's error is exactly the difference between the
    /// forced low bits and the discarded true low sum plus lost carry.
    #[test]
    fn truncated_adder_error_bound(t in 0usize..=8, a in any::<u64>(), b in any::<u64>()) {
        let tra = xlac::adders::TruncatedAdder::new(12, t).unwrap();
        let (a, b) = (bits::truncate(a, 12), bits::truncate(b, 12));
        let err = tra.add(a, b).abs_diff(a + b);
        prop_assert!(err < 1u64 << (t + 1));
    }

    /// Truncated-multiplier errors never exceed the dropped-column mass.
    #[test]
    fn truncated_multiplier_mass_bound(k in 0usize..=8, a in any::<u64>(), b in any::<u64>()) {
        use xlac::multipliers::TruncatedMultiplier;
        let m = TruncatedMultiplier::new(8, k, false).unwrap();
        let (a, b) = (bits::truncate(a, 8), bits::truncate(b, 8));
        let bound: u64 = (0..k).map(|c| ((c as u64 + 1).min(8)) << c).sum();
        prop_assert!(m.mul(a, b).abs_diff(a * b) <= bound);
    }

    /// Netlist optimization preserves the function of synthesized logic.
    #[test]
    fn optimizer_preserves_random_functions(n in 2usize..=5, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        use xlac::logic::opt::optimize;
        use xlac::logic::equiv::check_equivalence;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<u64> = (0..(1u64 << n)).map(|_| rng.gen::<u64>() & 0b11).collect();
        let tt = TruthTable::from_rows(n, 2, rows).unwrap();
        let nl = synthesize("p", &tt).unwrap();
        let opt = optimize(&nl);
        prop_assert_eq!(check_equivalence(&nl, &opt).unwrap(), None);
        prop_assert!(opt.gate_count() <= nl.gate_count());
    }

    /// Elaborated ripple netlists equal their behavioural models for any
    /// cell mix.
    #[test]
    fn elaboration_matches_behaviour(
        kind in prop::sample::select(FullAdderKind::ALL.to_vec()),
        lsbs in 0usize..=5,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        use xlac::adders::hw::{pack_operands, ripple_netlist};
        let rca = RippleCarryAdder::with_approx_lsbs(5, kind, lsbs.min(5)).unwrap();
        let nl = ripple_netlist(&rca);
        let (a, b) = (bits::truncate(a, 5), bits::truncate(b, 5));
        prop_assert_eq!(nl.eval(pack_operands(a, b, 5)), rca.add(a, b));
    }

    /// BD-rate of a curve against itself is zero, and scaling the rate by
    /// a constant factor recovers that factor.
    #[test]
    fn bd_rate_scaling_identity(factor in 1.01f64..2.0) {
        use xlac::video::rd::{bd_rate, RdPoint};
        let base: Vec<RdPoint> = (0..4)
            .map(|i| RdPoint { bits: 1000.0 * (1 << i) as f64, psnr_db: 30.0 + 3.0 * i as f64 })
            .collect();
        let scaled: Vec<RdPoint> =
            base.iter().map(|p| RdPoint { bits: p.bits * factor, ..*p }).collect();
        let bd = bd_rate(&base, &scaled).unwrap();
        prop_assert!((bd - (factor - 1.0) * 100.0).abs() < 0.5);
        prop_assert!(bd_rate(&base, &base).unwrap().abs() < 1e-9);
    }

    /// The signed multiplier is odd in each argument (for a core without
    /// constant compensation — a compensated core is intentionally
    /// non-zero at zero, breaking oddness there).
    #[test]
    fn signed_multiplier_is_odd(a in -127i64..=127, b in -127i64..=127) {
        use xlac::multipliers::{SignedMultiplier, TruncatedMultiplier};
        let m = SignedMultiplier::new(TruncatedMultiplier::new(8, 4, false).unwrap());
        prop_assert_eq!(m.mul_signed(a, b), m.mul_signed(-a, -b));
        prop_assert_eq!(m.mul_signed(-a, b), -m.mul_signed(a, b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analytical GeAr error model matches Monte-Carlo simulation for
    /// random configurations (heavier test: fewer cases).
    #[test]
    fn gear_error_model_matches_simulation((n, r, p) in gear_config()) {
        let gear = GeArAdder::new(n, r, p).unwrap();
        let model = xlac::adders::GearErrorModel::for_adder(&gear);
        let analytic = model.exact();
        let mc = model.monte_carlo(60_000, 0xABCD);
        prop_assert!((analytic - mc).abs() < 0.02, "N={} R={} P={}: {} vs {}", n, r, p, analytic, mc);
    }
}
