//! Thread-scaling regression for the sweep runner.
//!
//! The flat `DEFAULT_CHUNK` left mid-size sweeps with fewer chunks than
//! workers, so 8-thread runs barely beat 1-thread (a 65 536-trial sweep
//! had 8 chunks: zero load-balancing slack). Auto-chunking targets ~64
//! chunks; this test records the floor that fix must keep clearing.
//!
//! The timing assertion needs real cores to mean anything, so it
//! self-skips below 4 available CPUs; the bitwise thread-invariance
//! assertion (the determinism contract) runs everywhere.

use std::time::{Duration, Instant};
use xlac_adders::FullAdderKind;
use xlac_multipliers::WallaceMultiplier;
use xlac_sim::{auto_chunk_size, multiplier_sweep, SweepOptions};

const TRIALS: u64 = 65_536;

fn sweep_time(m: &WallaceMultiplier, threads: usize) -> Duration {
    // Best-of-N: the minimum is the least-noisy location estimator for
    // a quantity with a hard lower bound.
    (0..5)
        .map(|_| {
            let opts = SweepOptions::new(TRIALS, 0x7173).threads(threads).auto_chunk();
            let start = Instant::now();
            std::hint::black_box(multiplier_sweep(m, &opts));
            start.elapsed()
        })
        .min()
        .expect("non-empty sample")
}

#[test]
fn auto_chunked_sweeps_scale_with_threads() {
    let m = WallaceMultiplier::new(8, FullAdderKind::Apx2, 5).unwrap();

    // Determinism first, on any machine: auto-chunking must not let the
    // thread count leak into the statistics.
    let stats = |threads| {
        multiplier_sweep(&m, &SweepOptions::new(TRIALS, 0x7173).threads(threads).auto_chunk())
    };
    let one = stats(1);
    assert_eq!(one, stats(8));

    // The sweep must actually have enough chunks to balance 8 workers.
    assert!(
        auto_chunk_size(TRIALS) * 8 <= TRIALS,
        "auto chunk leaves fewer chunks than workers"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping timing assertion: only {cores} CPU(s) available");
        return;
    }
    let t1 = sweep_time(&m, 1);
    let t8 = sweep_time(&m, 8);
    let speedup = t1.as_secs_f64() / t8.as_secs_f64();
    // The recorded floor: well under the ideal on 4+ cores, far above
    // the ~1.0× the flat chunk size used to deliver.
    assert!(
        speedup >= 1.3,
        "8-thread sweep only {speedup:.2}x faster than 1-thread ({t1:?} vs {t8:?})"
    );
}
