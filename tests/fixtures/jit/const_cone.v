// Liveness edge case: a cone rooted in constants. a&0 folds to 0,
// 0|b folds to b, b^1 folds to !b — the whole module is one inverted
// passthrough and must compile to zero ops.
module const_cone (
    input  wire a,
    input  wire b,
    output wire y
);
    wire w0, w1, w2;

    and g0 (w0, a, 1'b0);
    or  g1 (w1, w0, b);
    xor g2 (w2, w1, 1'b1);

    assign y = w2;
endmodule
