// Liveness edge case: a serial AND chain. Each link's operands die as
// the link executes, so the destination recycles a dying register —
// the whole eight-input chain runs in the eight pinned input registers.
module chain (
    input  wire i0,
    input  wire i1,
    input  wire i2,
    input  wire i3,
    input  wire i4,
    input  wire i5,
    input  wire i6,
    input  wire i7,
    output wire y
);
    wire w0, w1, w2, w3, w4, w5;

    and g0 (w0, i0, i1);
    and g1 (w1, w0, i2);
    and g2 (w2, w1, i3);
    and g3 (w3, w2, i4);
    and g4 (w4, w3, i5);
    and g5 (w5, w4, i6);
    and g6 (y, w5, i7);
endmodule
