// Liveness edge case: no compute at all. Outputs alias an input, an
// inverted input, and a constant — the JIT must emit zero ops and
// resolve every output at the OutSrc layer.
module passthrough (
    input  wire a,
    input  wire b,
    output wire y0,
    output wire y1,
    output wire y2
);
    wire w0;

    not g0 (w0, b);

    assign y0 = a;
    assign y1 = w0;
    assign y2 = 1'b1;
endmodule
