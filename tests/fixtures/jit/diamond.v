// Liveness edge case: diamond reconvergence. w0 fans out to both
// diamond arms, so it must stay live across the first arm's op and its
// register may only be recycled after the second arm consumed it.
module diamond (
    input  wire a,
    input  wire b,
    input  wire c,
    output wire y
);
    wire w0, w1, w2;

    and g0 (w0, a, b);
    xor g1 (w1, w0, c);
    or  g2 (w2, w0, c);

    and g3 (y, w1, w2);
endmodule
