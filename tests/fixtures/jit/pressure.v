// Liveness edge case: register pressure. Every input is also a primary
// output, so no input register is ever freed; the five overlap products
// stay live until the XOR tree consumes them. With the demand-order
// schedule (tree xors interleave with the products as each pair is
// ready), the peak live set is 6 pinned inputs + 3 temporaries.
module pressure (
    input  wire i0,
    input  wire i1,
    input  wire i2,
    input  wire i3,
    input  wire i4,
    input  wire i5,
    output wire y,
    output wire e0,
    output wire e1,
    output wire e2,
    output wire e3,
    output wire e4,
    output wire e5
);
    wire w0, w1, w2, w3, w4;
    wire t0, t1, t2;

    and g0 (w0, i0, i1);
    and g1 (w1, i1, i2);
    and g2 (w2, i2, i3);
    and g3 (w3, i3, i4);
    and g4 (w4, i4, i5);

    xor g5 (t0, w0, w1);
    xor g6 (t1, w2, w3);
    xor g7 (t2, t0, t1);
    xor g8 (y, t2, w4);

    assign e0 = i0;
    assign e1 = i1;
    assign e2 = i2;
    assign e3 = i3;
    assign e4 = i4;
    assign e5 = i5;
endmodule
