//! Width-boundary pinning tests for the arithmetic datapaths.
//!
//! Silent wrap at a width boundary is the classic approximate-hardware
//! modelling bug: the software model wraps modulo 64 (or panics in debug
//! builds) where the circuit it stands for has a real carry-out wire or a
//! wider internal bus. These tests drive the SAD accelerator, the array
//! divider and the dataflow shift node at the extreme operand values of
//! the 8/16/31/32-bit edges and pin the intended semantics.

use xlac::accel::dataflow::Dataflow;
use xlac::accel::sad::{SadAccelerator, SadVariant};
use xlac::adders::divider::ArrayDivider;
use xlac::adders::{Adder, FullAdderKind, RippleCarryAdder};

/// The accurate SAD datapath at the absolute maximum: 256 lanes, every
/// current pixel 255, every reference pixel 0. The true SAD is
/// 256 × 255 = 65280 (17 bits) — the adder tree must carry it out
/// without truncation at any level.
#[test]
fn sad_maximum_block_does_not_truncate() {
    for lanes in [2usize, 16, 64, 256] {
        let sad = SadAccelerator::accurate(lanes).unwrap();
        let cur = vec![255u64; lanes];
        let refb = vec![0u64; lanes];
        let expected = 255 * lanes as u64;
        assert_eq!(sad.sad(&cur, &refb).unwrap(), expected, "{lanes} lanes");
        assert_eq!(SadAccelerator::sad_exact(&cur, &refb), expected);
    }
}

/// Every approximate variant with zero approximate LSBs is the exact
/// circuit — the maximum block must come out exact at the widest
/// configuration, proving the tree widths are sized for the worst case.
#[test]
fn sad_variants_carry_the_worst_case_at_zero_lsbs() {
    let cur = vec![255u64; 256];
    let refb = vec![0u64; 256];
    for variant in SadVariant::ALL {
        let sad = SadAccelerator::new(256, variant, 0).unwrap();
        assert_eq!(sad.sad(&cur, &refb).unwrap(), 255 * 256, "{variant}");
    }
}

/// Approximate SAD at the maximum block stays inside the datapath's
/// representable width. Aggressive cells may flip the abs-diff borrow
/// decision, so the error itself is unbounded downward — but the result
/// must never wrap past the tree's ~18-bit output into a huge u64, which
/// is what a silent `<<`/`+` wrap in the model would produce.
#[test]
fn approximate_sad_maximum_block_never_wraps() {
    let cur = vec![255u64; 256];
    let refb = vec![0u64; 256];
    // 8-bit lanes through 8 tree levels with carry-outs: < 2^18.
    let representable = 1u64 << 18;
    for variant in SadVariant::ALL.iter().skip(1) {
        for lsbs in [2usize, 4, 6, 8] {
            let sad = SadAccelerator::new(256, *variant, lsbs).unwrap();
            let got = sad.sad(&cur, &refb).unwrap();
            assert!(got < representable, "{variant}/{lsbs}: {got} wrapped");
        }
    }
}

/// The divider at its widest supported configuration (31 bits): maximum
/// dividend over small and maximum divisors. A silent wrap in the
/// shifted partial remainder (which reaches 32 bits mid-trial) would
/// corrupt the quotient here.
#[test]
fn divider_width_31_extremes_are_exact() {
    let div = ArrayDivider::accurate(31).unwrap();
    let max = (1u64 << 31) - 1;
    for divisor in [1u64, 2, 3, max - 1, max] {
        let (q, r) = div.divide(max, divisor).unwrap();
        assert_eq!((q, r), (max / divisor, max % divisor), "{max}/{divisor}");
        assert_eq!(q * divisor + r, max);
    }
    // Dividend smaller than divisor: quotient 0, remainder = dividend.
    assert_eq!(div.divide(5, max).unwrap(), (0, 5));
}

/// Exhaustive-ish boundary sweep at widths 8 and 16: the four corner
/// operands of each width against each other.
#[test]
fn divider_corner_operands_at_8_and_16_bits() {
    for width in [8usize, 16] {
        let div = ArrayDivider::accurate(width).unwrap();
        let max = (1u64 << width) - 1;
        let corners = [1u64, 2, max / 2, max - 1, max];
        for &n in &corners {
            for &d in &corners {
                let (q, r) = div.divide(n, d).unwrap();
                assert_eq!((q, r), (n / d, n % d), "width {width}: {n}/{d}");
            }
        }
    }
}

/// Width-31 operands just outside the range are rejected, not wrapped.
#[test]
fn divider_rejects_out_of_width_operands_at_the_edge() {
    let div = ArrayDivider::accurate(31).unwrap();
    let max = (1u64 << 31) - 1;
    assert!(div.divide(max + 1, 3).is_err());
    assert!(div.divide(3, max + 1).is_err());
    assert!(div.divide(max, max).is_ok());
}

fn shift_graph(amount: usize) -> Dataflow {
    let mut g = Dataflow::new(1, 32);
    let x = g.input(0);
    let s = g.shl(x, amount).unwrap();
    g.mark_output(s);
    g
}

/// A constant shift by the full word width (or more) models wiring every
/// bit off the top: the output is 0. `u64 << 64` would panic in debug
/// builds and silently become `<< 0` in release builds — the historical
/// wrap this pins against.
#[test]
fn dataflow_shift_by_word_width_clears() {
    for amount in [64usize, 65, 100, usize::MAX] {
        let g = shift_graph(amount);
        assert_eq!(g.eval(&[0xFFFF_FFFF]).unwrap(), vec![0], "shl {amount}");
        assert_eq!(g.eval_exact(&[0xFFFF_FFFF]).unwrap(), vec![0], "shl {amount}");
    }
}

/// Shifts inside the word keep exact semantics up to the last in-range
/// amount (63), including at the 32-bit input boundary.
#[test]
fn dataflow_shift_boundaries_inside_the_word() {
    let g = shift_graph(32);
    assert_eq!(g.eval(&[1]).unwrap(), vec![1u64 << 32]);
    let g = shift_graph(63);
    assert_eq!(g.eval(&[1]).unwrap(), vec![1u64 << 63]);
    // Top bit of a 32-bit input shifted by 63: bit 31 falls off the top.
    let g = shift_graph(63);
    assert_eq!(g.eval(&[0x8000_0000]).unwrap(), vec![0]);
}

/// Ripple-carry adders at their width boundary: the carry-out wire is
/// part of the result (`width + 1` bits), so max + max is the full sum —
/// never a wrapped value — at 8, 16 and 32 bits alike.
#[test]
fn ripple_adder_carry_out_survives_the_width_boundary() {
    for width in [8usize, 16, 32] {
        let add = RippleCarryAdder::with_approx_lsbs(width, FullAdderKind::Accurate, 0).unwrap();
        let max = (1u64 << width) - 1;
        assert_eq!(add.add(max, max), max + max, "width {width}");
        assert_eq!(add.add(max, 1), 1u64 << width, "width {width} carries out");
        assert_eq!(add.add(max, 0), max, "width {width} identity");
    }
}
