//! Cross-layer integration tests: the paper's whole point is that a choice
//! at the logic layer (which full-adder cell, how many approximate LSBs)
//! has a measurable, controlled effect at the application layer (bit-rate,
//! SSIM). These tests exercise the full stack end to end.

use xlac::accel::sad::{SadAccelerator, SadVariant};
use xlac::adders::{FullAdderKind, GeArAdder, RippleCarryAdder};
use xlac::imaging::images::TestImage;
use xlac::imaging::resilience::{resilience_study, StudyConfig};
use xlac::multipliers::{Mul2x2Kind, Multiplier, RecursiveMultiplier, SumMode};
use xlac::video::encoder::{Encoder, EncoderConfig};
use xlac::video::me::MotionEstimator;
use xlac::video::sequence::{SequenceConfig, SyntheticSequence};

/// Logic layer → architecture layer: swapping the FA cell inside a
/// multiplier's summation tree changes its error profile in the direction
/// the cell's own error count predicts.
#[test]
fn cell_choice_propagates_into_multiplier_quality() {
    let stats_for = |kind: FullAdderKind| {
        let m = RecursiveMultiplier::new(
            8,
            Mul2x2Kind::Accurate,
            SumMode::ApproxLsbs { kind, lsbs: 4 },
        )
        .unwrap();
        xlac::core::metrics::exhaustive_binary(8, 8, |a, b| a * b, |a, b| m.mul(a, b))
    };
    let apx1 = stats_for(FullAdderKind::Apx1); // 2 error cases / 8 rows
    let apx5 = stats_for(FullAdderKind::Apx5); // 4 error cases / 8 rows
    assert!(
        apx5.mean_error_distance > apx1.mean_error_distance,
        "the sloppier cell must hurt more: {} !> {}",
        apx5.mean_error_distance,
        apx1.mean_error_distance
    );
}

/// Logic layer → application layer: the encoder's bit-rate responds to the
/// number of approximated LSBs the way Fig.9 shows (2/4 marginal, 6 bad).
#[test]
fn lsb_count_controls_bitrate_overhead() {
    let seq = SyntheticSequence::generate(&SequenceConfig::small_test()).unwrap();
    let bits = |lsbs: usize| {
        let sad = SadAccelerator::new(64, SadVariant::ApxSad4, lsbs).unwrap();
        Encoder::new(EncoderConfig::default(), sad).unwrap().encode(seq.frames()).unwrap().total_bits
            as f64
    };
    let exact = bits(0);
    let two = bits(2) / exact - 1.0;
    let six = bits(6) / exact - 1.0;
    assert!(two < 0.10, "2 approximate LSBs must stay marginal: {:.1}%", two * 100.0);
    assert!(six > two, "6 LSBs ({six:.3}) must out-cost 2 LSBs ({two:.3})");
}

/// GeAr with full correction enabled is a drop-in exact adder inside a
/// larger datapath (the configurable-accuracy promise).
#[test]
fn corrected_gear_is_a_drop_in_exact_adder() {
    let gear = GeArAdder::new(16, 4, 4).unwrap();
    for a in (0u64..65536).step_by(1021) {
        for b in (0u64..65536).step_by(977) {
            let fixed = gear.add_with_correction(a, b, usize::MAX);
            assert_eq!(fixed.value, a + b);
        }
    }
}

/// The accurate SAD accelerator plugged into the motion estimator finds
/// the same motion field as a pure-software search.
#[test]
fn hardware_sad_equals_software_sad_when_accurate() {
    let seq = SyntheticSequence::generate(&SequenceConfig::small_test()).unwrap();
    let me = MotionEstimator::new(SadAccelerator::accurate(64).unwrap(), 3).unwrap();
    let field = me.estimate(&seq.frames()[1], &seq.frames()[0]).unwrap();
    // Re-derive the field in plain software.
    let (cur, reff) = (&seq.frames()[1], &seq.frames()[0]);
    for br in 0..field.vectors.rows() {
        for bc in 0..field.vectors.cols() {
            let (top, left) = (br * 8, bc * 8);
            let mut best = (u64::MAX, i32::MAX, (0i32, 0i32));
            for dy in -3i32..=3 {
                for dx in -3i32..=3 {
                    let (ty, tx) = (top as i64 + dy as i64, left as i64 + dx as i64);
                    if ty < 0 || tx < 0 || ty + 8 > 64 || tx + 8 > 64 {
                        continue;
                    }
                    let mut sad = 0u64;
                    for r in 0..8 {
                        for c in 0..8 {
                            sad += cur[(top + r, left + c)]
                                .abs_diff(reff[((ty as usize) + r, (tx as usize) + c)]);
                        }
                    }
                    let mag = dy.abs() + dx.abs();
                    if sad < best.0 || (sad == best.0 && mag < best.1) {
                        best = (sad, mag, (dy, dx));
                    }
                }
            }
            assert_eq!(field.vectors[(br, bc)], best.2, "block ({br},{bc})");
            assert_eq!(field.costs[(br, bc)], best.0, "block ({br},{bc})");
        }
    }
}

/// Filter accelerator built from ripple adders equals an independent
/// software convolution when configured accurate — and the SSIM study
/// runs end-to-end across imaging + quality + accel + adders.
#[test]
fn resilience_study_runs_end_to_end() {
    let rows = resilience_study(
        &TestImage::ALL,
        StudyConfig { size: 32, kind: FullAdderKind::Apx3, approx_lsbs: 4 },
    )
    .unwrap();
    assert_eq!(rows.len(), 7);
    for row in &rows {
        assert!(row.ssim > 0.5, "{}: SSIM {} collapsed", row.image, row.ssim);
        assert!(row.ssim <= 1.0 + 1e-12);
    }
}

/// Hardware-cost accounting is consistent across the composition layers:
/// a SAD accelerator costs more than the sum of one subtractor and its
/// tree adders individually scaled, and approximating strictly reduces
/// every layer's figure.
#[test]
fn cost_model_is_monotone_through_composition() {
    let exact = SadAccelerator::accurate(16).unwrap().hw_cost();
    let approx = SadAccelerator::new(16, SadVariant::ApxSad5, 6).unwrap().hw_cost();
    assert!(approx.area_ge < exact.area_ge);
    assert!(approx.power_nw < exact.power_nw);

    // The exact SAD accelerator must cost at least its 16 subtractors.
    let sub = xlac::adders::Subtractor::new(RippleCarryAdder::accurate(8)).hw_cost();
    assert!(exact.area_ge > sub.area_ge * 16.0);
}

/// The adder trait objects compose across crates: a GeAr, a CLA and an
/// approximate ripple adder can all drive the same dataflow accelerator.
#[test]
fn heterogeneous_adder_bank_in_one_dataflow() {
    use xlac::accel::dataflow::Dataflow;
    let mut g = Dataflow::new(3, 8);
    let gear = g.register_adder(Box::new(GeArAdder::new(9, 3, 3).unwrap()));
    let cla = g.register_adder(Box::new(xlac::adders::CarryLookaheadAdder::new(10)));
    let rca = g.register_adder(Box::new(
        RippleCarryAdder::with_approx_lsbs(10, FullAdderKind::Apx2, 2).unwrap(),
    ));
    let s0 = g.add(gear, g.input(0), g.input(1)).unwrap();
    let s1 = g.add(cla, s0, g.input(2)).unwrap();
    let s2 = g.add(rca, s1, g.input(0)).unwrap();
    g.mark_output(s2);
    let approx = g.eval(&[100, 120, 30]).unwrap()[0];
    let exact = g.eval_exact(&[100, 120, 30]).unwrap()[0];
    assert_eq!(exact, 100 + 120 + 30 + 100);
    assert!(approx.abs_diff(exact) < 64, "approximation stays bounded");
}
