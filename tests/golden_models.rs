//! Exhaustive golden-model tests against the paper's published tables.
//!
//! * Table III — all 8 input combinations of `AccuFA` and `ApxFA1..5`,
//!   checked cell by cell against an independent transcription of the
//!   table, plus each cell's `#Error Cases` row (0, 2, 2, 3, 3, 4).
//! * Fig. 5 — all 16 operand pairs of the 2×2 multiplier designs
//!   (`AccMul`, `ApxMulSoA`, `ApxMulOur`), their error-case counts
//!   (0, 1, 3) and maximum error values (0, 2, 1), plus recursive
//!   composition spot-checks at 4×4 and 8×8.
//! * Table IV's foundation — the analytical GeAr error model validated
//!   against seeded Monte-Carlo simulation (≥1e5 trials) for
//!   representative (R, P) configurations, including the ACA-II and
//!   ETAII special cases.

use xlac::adders::{FullAdderKind, GeArAdder, GearErrorModel};
use xlac::multipliers::{Mul2x2Kind, Multiplier, RecursiveMultiplier, SumMode};

/// Independent transcription of Table III, `(sum, cout)` for inputs
/// `(a, b, cin)` enumerated as `a<<2 | b<<1 | cin` — deliberately spelled
/// out from the cells' published equations rather than imported from the
/// library, so a transcription error in either copy fails the test.
fn table3_golden(kind: FullAdderKind, a: u64, b: u64, cin: u64) -> (u64, u64) {
    let exact_sum = (a + b + cin) & 1;
    let exact_cout = u64::from(a + b + cin >= 2);
    match kind {
        FullAdderKind::Accurate => (exact_sum, exact_cout),
        // ApxFA1 (IMPACT 1): cout = b + a·cin, sum = cin·(a XNOR b).
        FullAdderKind::Apx1 => {
            let cout = b | (a & cin);
            let sum = cin & u64::from(a == b);
            (sum, cout)
        }
        // ApxFA2: exact carry, sum = !cout.
        FullAdderKind::Apx2 => (1 - exact_cout, exact_cout),
        // ApxFA3: cout = b + a·cin, sum = !cout.
        FullAdderKind::Apx3 => {
            let cout = b | (a & cin);
            (1 - cout, cout)
        }
        // ApxFA4 (IMPACT 4): cout = a, sum = cin·!(a·!b).
        FullAdderKind::Apx4 => {
            let sum = cin & (1 - (a & (1 - b)));
            (sum, a)
        }
        // ApxFA5: pure wiring, sum = b, cout = a.
        FullAdderKind::Apx5 => (b, a),
    }
}

#[test]
fn table3_truth_tables_match_paper_exhaustively() {
    for kind in FullAdderKind::ALL {
        for x in 0u64..8 {
            let (a, b, cin) = ((x >> 2) & 1, (x >> 1) & 1, x & 1);
            let got = kind.eval(a, b, cin);
            let want = table3_golden(kind, a, b, cin);
            assert_eq!(
                got, want,
                "{kind}: a={a} b={b} cin={cin} — library {got:?} vs Table III {want:?}"
            );
        }
    }
}

#[test]
fn table3_error_case_counts_match_paper() {
    // The `#Error Cases` row of Table III, in ALL order.
    let expected = [0usize, 2, 2, 3, 3, 4];
    for (kind, want) in FullAdderKind::ALL.into_iter().zip(expected) {
        // Count independently over the 8 input rows…
        let counted = (0u64..8)
            .filter(|&x| {
                let (a, b, cin) = ((x >> 2) & 1, (x >> 1) & 1, x & 1);
                kind.eval(a, b, cin) != FullAdderKind::Accurate.eval(a, b, cin)
            })
            .count();
        assert_eq!(counted, want, "{kind}: exhaustive error-case count");
        // …and require the library's own characterization to agree.
        assert_eq!(kind.error_cases(), want, "{kind}: error_cases()");
    }
}

#[test]
fn fig5_accurate_mul2x2_is_exact_exhaustively() {
    for a in 0u64..4 {
        for b in 0u64..4 {
            assert_eq!(Mul2x2Kind::Accurate.mul(a, b), a * b);
        }
    }
    assert_eq!(Mul2x2Kind::Accurate.error_cases(), 0);
    assert_eq!(Mul2x2Kind::Accurate.max_error_value(), 0);
}

#[test]
fn fig5_apx_soa_mul2x2_matches_paper_exhaustively() {
    // Kulkarni's design: the single error case is 3×3 → 7 (exact 9);
    // every other pair is exact.
    for a in 0u64..4 {
        for b in 0u64..4 {
            let got = Mul2x2Kind::ApxSoA.mul(a, b);
            if (a, b) == (3, 3) {
                assert_eq!(got, 7, "3×3 must produce 7");
            } else {
                assert_eq!(got, a * b, "{a}×{b} must be exact");
            }
        }
    }
    assert_eq!(Mul2x2Kind::ApxSoA.error_cases(), 1);
    assert_eq!(Mul2x2Kind::ApxSoA.max_error_value(), 2);
}

#[test]
fn fig5_apx_our_mul2x2_matches_paper_exhaustively() {
    // The paper's design rewires the (only) MSB case into the LSB:
    // products with p3=0 lose their p0, so 1×1→0, 1×3 and 3×1→2,
    // while 3×3 (the sole p3=1 product) stays exact at 9.
    for a in 0u64..4 {
        for b in 0u64..4 {
            let got = Mul2x2Kind::ApxOur.mul(a, b);
            let want = match (a, b) {
                (1, 1) => 0,
                (1, 3) | (3, 1) => 2,
                _ => a * b,
            };
            assert_eq!(got, want, "{a}×{b}");
            assert!(got.abs_diff(a * b) <= 1, "{a}×{b}: error above paper bound");
        }
    }
    assert_eq!(Mul2x2Kind::ApxOur.error_cases(), 3);
    assert_eq!(Mul2x2Kind::ApxOur.max_error_value(), 1);
}

#[test]
fn recursive_composition_4x4_exhaustive() {
    let acc = RecursiveMultiplier::new(4, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap();
    let soa = RecursiveMultiplier::new(4, Mul2x2Kind::ApxSoA, SumMode::Accurate).unwrap();
    let our = RecursiveMultiplier::new(4, Mul2x2Kind::ApxOur, SumMode::Accurate).unwrap();
    // Worst cases: each of the four 2×2 sub-products can independently
    // hit its block's worst error, scaled by the block's weight
    // (1 + 2·4 + 16 for the three partial-product positions).
    let soa_bound = 2 * (1 + 4 + 4 + 16); // per-block max error 2
    let our_bound = 1 + 4 + 4 + 16; // per-block max error 1
    for a in 0u64..16 {
        for b in 0u64..16 {
            assert_eq!(acc.mul(a, b), a * b, "accurate 4×4 at {a}×{b}");
            let e_soa = soa.mul(a, b);
            assert!(e_soa <= a * b, "ApxSoA only under-estimates ({a}×{b})");
            assert!(e_soa.abs_diff(a * b) <= soa_bound, "ApxSoA 4×4 bound at {a}×{b}");
            assert!(our.mul(a, b).abs_diff(a * b) <= our_bound, "ApxOur 4×4 bound at {a}×{b}");
        }
    }
    // The canonical composed worst case: 15×15 stacks 3×3 in every block.
    assert!(soa.mul(15, 15) < 225);
}

#[test]
fn recursive_composition_8x8_spot_checks() {
    let acc = RecursiveMultiplier::new(8, Mul2x2Kind::Accurate, SumMode::Accurate).unwrap();
    let soa = RecursiveMultiplier::new(8, Mul2x2Kind::ApxSoA, SumMode::Accurate).unwrap();
    // A deterministic operand sweep covering all byte regions.
    let spots: Vec<u64> = (0..=255u64).step_by(17).chain([1, 3, 85, 170, 255]).collect();
    for &a in &spots {
        for &b in &spots {
            assert_eq!(acc.mul(a, b), a * b, "accurate 8×8 at {a}×{b}");
            assert!(soa.mul(a, b) <= a * b, "ApxSoA under-estimates at {a}×{b}");
        }
    }
    // Error grows with operand magnitude but stays below the composed
    // block bound (each 2×2 block errs by ≤2 at its weight).
    assert!(soa.mul(255, 255) < 255 * 255);
    assert_eq!(soa.mul(0, 255), 0);
    assert_eq!(soa.mul(1, 1), 1);
}

/// One analytic-vs-Monte-Carlo comparison; `trials` ≥ 1e5 keeps the MC
/// standard error below ~0.0016, so a 0.01 tolerance is ~6 sigma.
fn assert_model_matches_mc(gear: &GeArAdder, trials: u64, seed: u64) {
    let model = GearErrorModel::for_adder(gear);
    let analytic = model.exact();
    let mc = model.monte_carlo(trials, seed);
    assert!(
        (analytic - mc).abs() < 0.01,
        "GeAr(N={}, R={}, P={}): analytic {analytic:.5} vs MC {mc:.5}",
        gear.n(),
        gear.r(),
        gear.p()
    );
    // The inclusion–exclusion evaluation must agree with the exact DP.
    let ie = model.inclusion_exclusion();
    assert!(
        (analytic - ie).abs() < 1e-9,
        "inclusion-exclusion diverges from exact: {analytic} vs {ie}"
    );
}

#[test]
fn gear_error_model_validated_by_monte_carlo() {
    // Representative (R, P) sweep at N=16, plus the N=12 odd shapes.
    for (n, r, p) in [(16, 4, 4), (16, 2, 2), (16, 4, 0), (16, 2, 6), (12, 2, 4), (12, 3, 3)] {
        let gear = GeArAdder::new(n, r, p).unwrap();
        assert_model_matches_mc(&gear, 120_000, 0xDAC_2016 + r as u64);
    }
}

#[test]
fn gear_error_model_validated_for_aca_ii_and_etaii() {
    // ACA-II is GeAr with R = P = l/2.
    let aca2 = GeArAdder::aca_ii(16, 8).unwrap();
    assert_eq!((aca2.r(), aca2.p()), (4, 4));
    assert_model_matches_mc(&aca2, 120_000, 0xACA2);

    // ETAII is GeAr with R = P = block.
    let etaii = GeArAdder::etaii(16, 2).unwrap();
    assert_eq!((etaii.r(), etaii.p()), (2, 2));
    assert_model_matches_mc(&etaii, 120_000, 0xE7A2);

    // ACA-I (R=1, P=l−1) exercises the single-result-bit windows.
    let aca1 = GeArAdder::aca_i(16, 4).unwrap();
    assert_eq!((aca1.r(), aca1.p()), (1, 3));
    assert_model_matches_mc(&aca1, 120_000, 0xACA1);
}

#[test]
fn gear_error_model_exhaustive_agrees_on_small_widths() {
    // On widths where 4^N is enumerable the exhaustive rate is the ground
    // truth; the analytic model must match it to machine precision.
    for (n, r, p) in [(8, 2, 2), (8, 4, 4), (6, 2, 0), (9, 3, 3)] {
        let gear = GeArAdder::new(n, r, p).unwrap();
        let model = GearErrorModel::for_adder(&gear);
        let exact = model.exact();
        let truth = model.exhaustive();
        assert!(
            (exact - truth).abs() < 1e-12,
            "GeAr(N={n}, R={r}, P={p}): exact {exact} vs exhaustive {truth}"
        );
    }
}
