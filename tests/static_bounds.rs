//! Soundness of the `xlac-analysis` static error bounds against ground
//! truth: exhaustive sweeps where the operand space fits, and seeded
//! property-based sampling (the `xlac_core::check` harness) where it
//! does not. The contract under test is `DESIGN.md` §9: for every
//! shipped configuration the static worst-case bound dominates every
//! error the hardware can actually produce.

use xlac::adders::{Adder, FullAdderKind, GeArAdder, RippleCarryAdder};
use xlac::analysis::components::{
    gear_adder_bound, recursive_multiplier_bound, ripple_adder_bound, truncated_bound,
    wallace_bound,
};
use xlac::analysis::validate::run_all_checks;
use xlac::core::bits;
use xlac::core::check::{check, DefaultRng, Rng};
use xlac::multipliers::{
    Mul2x2Kind, Multiplier, RecursiveMultiplier, SumMode, TruncatedMultiplier, WallaceMultiplier,
};
use xlac_core::prop_assert;

/// Absolute error of an approximate sum against `a + b`.
fn adder_error(approx: u64, a: u64, b: u64) -> u128 {
    u128::from(approx).abs_diff(u128::from(a) + u128::from(b))
}

#[test]
fn every_eight_bit_gear_config_is_exhaustively_bounded() {
    // All valid multi-sub-adder (R, P) points at N = 8, every operand
    // pair. The bound must also be *attained* when P = 0 (the classic
    // worst-case formula is exact there).
    let mut tested = 0usize;
    for r in 1usize..8 {
        for p in 0usize..8 {
            let l = r + p;
            if l >= 8 || !(8 - l).is_multiple_of(r) {
                continue;
            }
            let gear = GeArAdder::new(8, r, p).unwrap();
            let bound = gear_adder_bound(&gear);
            let mut max_err = 0u128;
            let mut rate = 0u64;
            for a in 0..256u64 {
                for b in 0..256u64 {
                    let approx = Adder::add(&gear, a, b);
                    let err = adder_error(approx, a, b);
                    max_err = max_err.max(err);
                    rate += u64::from(err != 0);
                    // GeAr only under-estimates; `over` must stay 0.
                    assert!(u128::from(approx) <= u128::from(a + b), "R{r}P{p}");
                }
            }
            assert!(max_err <= bound.wce(), "R{r}P{p}: {max_err} > {}", bound.wce());
            assert!(
                f64::from(u32::try_from(rate).unwrap()) / 65536.0
                    <= bound.error_rate_bound + 1e-9,
                "R{r}P{p}: rate"
            );
            if p == 0 {
                assert_eq!(max_err, bound.wce(), "R{r}P0 must attain the bound");
            }
            tested += 1;
        }
    }
    assert!(tested >= 6, "expected several valid 8-bit configs, got {tested}");
}

#[test]
fn every_four_bit_multiplier_composition_is_exhaustively_bounded() {
    // 4×4 recursive multipliers: every 2×2 block kind crossed with every
    // summation mode, exhaustively over all 256 operand pairs.
    let sum_modes = [
        SumMode::Accurate,
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx2, lsbs: 2 },
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx5, lsbs: 4 },
    ];
    for kind in Mul2x2Kind::ALL {
        for mode in sum_modes {
            let m = RecursiveMultiplier::new(4, kind, mode).unwrap();
            let bound = recursive_multiplier_bound(&m);
            let mut max_err = 0u128;
            for a in 0..16u64 {
                for b in 0..16u64 {
                    max_err = max_err.max(u128::from(m.mul(a, b).abs_diff(a * b)));
                }
            }
            assert!(
                max_err <= bound.wce(),
                "{kind:?}/{mode:?}: observed {max_err} > bound {}",
                bound.wce()
            );
            if kind == Mul2x2Kind::Accurate && mode == SumMode::Accurate {
                assert!(bound.is_exact(), "accurate composition must be exact");
            }
        }
    }
}

#[test]
fn eight_bit_multiplier_bounds_hold_under_sampling() {
    // 8×8 compositions across all three families, driven by the seeded
    // property harness (shrinking + replayable failures).
    check(
        "eight_bit_multiplier_bounds_hold_under_sampling",
        |rng: &mut DefaultRng| (rng.gen_range(0..9usize), rng.gen::<u64>(), rng.gen::<u64>()),
        |&(which, a, b)| {
            if which >= 9 {
                return Ok(());
            }
            let (a, b) = (bits::truncate(a, 8), bits::truncate(b, 8));
            let (approx, wce): (u64, u128) = match which {
                0..=2 => {
                    let kind = [Mul2x2Kind::Accurate, Mul2x2Kind::ApxSoA, Mul2x2Kind::ApxOur]
                        [which];
                    let m = RecursiveMultiplier::new(
                        8,
                        kind,
                        SumMode::ApproxLsbs { kind: FullAdderKind::Apx2, lsbs: 2 },
                    )
                    .unwrap();
                    (m.mul(a, b), recursive_multiplier_bound(&m).wce())
                }
                3..=5 => {
                    let (kind, cols) = [
                        (FullAdderKind::Apx2, 4),
                        (FullAdderKind::Apx4, 8),
                        (FullAdderKind::Apx5, 8),
                    ][which - 3];
                    let m = WallaceMultiplier::new(8, kind, cols).unwrap();
                    (m.mul(a, b), wallace_bound(&m).wce())
                }
                _ => {
                    let (k, comp) = [(2, false), (4, true), (6, true)][which - 6];
                    let m = TruncatedMultiplier::new(8, k, comp).unwrap();
                    (m.mul(a, b), truncated_bound(&m).wce())
                }
            };
            let err = u128::from(approx.abs_diff(a * b));
            prop_assert!(err <= wce, "family {} at {}x{}: {} > {}", which, a, b, err, wce);
            Ok(())
        },
    );
}

#[test]
fn ripple_adder_bounds_hold_under_sampling() {
    // Approximate-LSB ripple adders at random widths, kinds and depths.
    check(
        "ripple_adder_bounds_hold_under_sampling",
        |rng: &mut DefaultRng| {
            (
                rng.gen_range(0..FullAdderKind::APPROXIMATE.len()),
                rng.gen_range(4..=12usize),
                rng.gen_range(0..=6usize),
                rng.gen::<u64>(),
                rng.gen::<u64>(),
            )
        },
        |&(kind_idx, width, lsbs, a, b)| {
            if kind_idx >= FullAdderKind::APPROXIMATE.len() || !(4..=12).contains(&width) {
                return Ok(());
            }
            let kind = FullAdderKind::APPROXIMATE[kind_idx];
            let rca = RippleCarryAdder::with_approx_lsbs(width, kind, lsbs.min(width)).unwrap();
            let bound = ripple_adder_bound(&rca);
            let (a, b) = (bits::truncate(a, width), bits::truncate(b, width));
            let err = adder_error(rca.add(a, b), a, b);
            prop_assert!(
                err <= bound.wce(),
                "{} w{} l{}: {} > {}",
                kind,
                width,
                lsbs,
                err,
                bound.wce()
            );
            Ok(())
        },
    );
}

#[test]
fn full_check_suite_reports_sound_at_reduced_sampling() {
    // The library's own validation sweep (the same one `xlac-lint` runs
    // in CI) must be sound end to end. Reduced sample count keeps the
    // tier-1 wall-clock in budget; CI runs the full count.
    let checks = run_all_checks(20_000).unwrap();
    assert!(checks.len() >= 40, "expected a broad sweep, got {}", checks.len());
    for c in &checks {
        assert!(
            c.is_sound(),
            "{}: bound {:?} vs observed over {} under {}",
            c.name,
            c.bound,
            c.observed_over,
            c.observed_under
        );
    }
}
