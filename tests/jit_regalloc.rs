//! Register-allocator unit tests on fixture netlists
//! (`tests/fixtures/jit/*.v`): liveness edge cases — passthrough
//! outputs, constant cones, diamond reconvergence, register pressure,
//! serial-chain recycling — each locked down both behaviourally
//! (exhaustive against the interpreter) and structurally (op counts,
//! register-file bounds, output sources).

use std::path::Path;
use xlac_analysis::parse::parse_verilog;
use xlac_logic::Netlist;
use xlac_sim::{CompiledProgram, OutSrc};

fn fixture(name: &str) -> Netlist {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/jit/{name}.v"));
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let (module, errors) = parse_verilog(&source);
    assert!(errors.is_empty(), "{name}: {errors:?}");
    module.expect("fixture has a module").to_netlist().unwrap()
}

/// Compiled == interpreted over the whole input space (all fixtures are
/// well under the 2^20 exhaustive ceiling).
fn assert_exhaustively_equal(nl: &Netlist, prog: &CompiledProgram) {
    for x in 0..(1u64 << nl.n_inputs()) {
        assert_eq!(prog.eval(x), nl.eval(x), "{}: input {x:#b}", nl.name());
    }
}

#[test]
fn passthrough_outputs_never_touch_the_op_array() {
    let nl = fixture("passthrough");
    let prog = CompiledProgram::compile(&nl);
    assert_exhaustively_equal(&nl, &prog);
    let stats = prog.stats();
    assert_eq!(stats.ops, 0, "aliases and constants must not emit ops");
    assert_eq!(stats.registers, 2, "only the pinned inputs");
    assert_eq!(
        prog.output_srcs(),
        [
            OutSrc::Reg { reg: 0, invert: false },
            OutSrc::Reg { reg: 1, invert: true },
            OutSrc::Const(true),
        ]
    );
}

#[test]
fn constant_cones_fold_to_an_inverted_passthrough() {
    let nl = fixture("const_cone");
    let prog = CompiledProgram::compile(&nl);
    assert_exhaustively_equal(&nl, &prog);
    let stats = prog.stats();
    assert_eq!(stats.ops, 0, "the whole cone folds at compile time");
    assert_eq!(prog.output_srcs(), [OutSrc::Reg { reg: 1, invert: true }]);
    // Input a is dead: its pinned register exists but nothing reads it.
    assert!(prog.ops().is_empty());
}

#[test]
fn diamond_reconvergence_keeps_the_shared_node_live() {
    let nl = fixture("diamond");
    let prog = CompiledProgram::compile(&nl);
    assert_exhaustively_equal(&nl, &prog);
    let stats = prog.stats();
    assert_eq!(stats.ops, 4, "no fold applies: and, xor, or, and");
    // w0 must survive the first arm; c survives both arms. Peak pressure
    // is 3 inputs + w0 + one arm = 5; recycling dying registers caps the
    // file there.
    assert!(stats.registers <= 5, "register file grew to {}", stats.registers);
    // The shared node w0 is computed exactly once (CSE'd DAG, not a tree).
    assert_eq!(stats.cse_hits, 0);
    assert_eq!(stats.dead_nodes, 0);
}

#[test]
fn register_pressure_is_the_live_set_peak() {
    let nl = fixture("pressure");
    let prog = CompiledProgram::compile(&nl);
    assert_exhaustively_equal(&nl, &prog);
    let stats = prog.stats();
    assert_eq!(stats.ops, 9, "five products, four tree xors");
    // Every input is a primary output, so none of the six pinned input
    // registers is ever freed — the op array must work above them. The
    // demand-order schedule interleaves tree xors with the products, so
    // the peak live set adds three temporaries.
    assert_eq!(stats.registers, 9, "6 pinned inputs + 3 live temporaries");
    // The input echoes resolve at the OutSrc layer, straight from the
    // pinned registers.
    for (i, src) in prog.output_srcs().iter().skip(1).enumerate() {
        assert_eq!(*src, OutSrc::Reg { reg: i as u16, invert: false });
    }
}

#[test]
fn serial_chains_recycle_dying_registers() {
    let nl = fixture("chain");
    let prog = CompiledProgram::compile(&nl);
    assert_exhaustively_equal(&nl, &prog);
    let stats = prog.stats();
    assert_eq!(stats.ops, 7);
    // Each link's dst reuses a register its own operands just vacated.
    assert_eq!(stats.registers, nl.n_inputs(), "chain must run inside the pinned registers");
}
