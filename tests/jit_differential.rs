//! Differential fuzz suite for the bit-plane JIT (DESIGN.md §13).
//!
//! Seeded random netlists — full gate vocabulary, reconvergent fanout,
//! repeated/constant/passthrough outputs — are compiled to bytecode and
//! the compiled function is compared against two independent evaluators:
//! the netlist's word-level interpreter (`eval_words`) and its scalar
//! packer (`eval`), on every lane, at all three plane-block widths.
//! Input spaces up to 2^20 are enumerated exhaustively (an exhaustive
//! check *is* a proof); wider modules get ≥ 10^5 seeded vectors. Lane
//! permutation and sweep thread count are proven not to matter.

use xlac_core::lanes::{self, PlaneBlock, LANES};
use xlac_core::rng::{DefaultRng, Rng};
use xlac_logic::random::{random_netlist, RandomNetlistSpec};
use xlac_logic::Netlist;
use xlac_multipliers::hw::wallace_netlist;
use xlac_multipliers::WallaceMultiplier;
use xlac_sim::{compiled_pair_sweep, CompiledProgram, SweepOptions};

/// Runs `prog` over one 64-lane batch of input words at plane width `B`,
/// placing the batch in word `word` of each block (the other words carry
/// unrelated noise drawn from `rng`, so cross-word independence is
/// exercised too), and returns the output words of that batch.
fn run_batch_at<B: PlaneBlock>(
    prog: &CompiledProgram,
    words: &[u64],
    word: usize,
    rng: &mut DefaultRng,
) -> Vec<u64> {
    let inputs: Vec<B> = words
        .iter()
        .map(|&w| {
            let mut block = B::zeros();
            for s in 0..B::WORDS {
                block.set_word(s, if s == word { w } else { rng.next_u64() });
            }
            block
        })
        .collect();
    prog.run(&inputs).iter().map(|o| o.word(word)).collect()
}

/// Asserts compiled == interpreted == scalar on one 64-lane batch of
/// input words, at every plane width.
fn assert_batch_agrees(nl: &Netlist, prog: &CompiledProgram, words: &[u64], rng: &mut DefaultRng) {
    let interpreted = nl.eval_words(words);
    let w1 = run_batch_at::<u64>(prog, words, 0, rng);
    let w4 = run_batch_at::<[u64; 4]>(prog, words, rng.gen_range(0..4), rng);
    let w8 = run_batch_at::<[u64; 8]>(prog, words, rng.gen_range(0..8), rng);
    assert_eq!(w1, interpreted, "{}: u64 plane vs interpreter", nl.name());
    assert_eq!(w4, interpreted, "{}: [u64;4] plane vs interpreter", nl.name());
    assert_eq!(w8, interpreted, "{}: [u64;8] plane vs interpreter", nl.name());
    // The scalar packer is the third, independent evaluator: spot-check
    // a handful of lanes per batch (all 64 would just re-derive
    // eval_words bit by bit).
    for lane in [0usize, 17, 63] {
        let packed = words
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &w)| acc | (((w >> lane) & 1) << i));
        let out_scalar = nl.eval(packed);
        let out_lanes = interpreted
            .iter()
            .enumerate()
            .fold(0u64, |acc, (k, &o)| acc | (((o >> lane) & 1) << k));
        assert_eq!(out_scalar, out_lanes, "{}: scalar eval at lane {lane}", nl.name());
        assert_eq!(out_scalar, prog.eval(packed), "{}: compiled eval at lane {lane}", nl.name());
    }
}

/// Exhaustive batches covering `0..2^n` (n ≤ 20): plane `i`, lane `j`
/// carries bit `i` of assignment `base + j`.
fn exhaustive_batches(n_inputs: usize) -> impl Iterator<Item = Vec<u64>> {
    assert!(n_inputs <= 20);
    (0..(1u64 << n_inputs)).step_by(LANES).map(move |base| {
        (0..n_inputs)
            .map(|i| (0..64).fold(0u64, |p, j| p | ((((base + j) >> i) & 1) << j)))
            .collect()
    })
}

#[test]
fn random_netlists_are_exhaustively_equivalent_at_every_width() {
    // Default spec: 2..=8 inputs, full vocabulary, up to 48 gates. 96
    // seeds × ≤ 256 assignments, three plane widths each.
    let spec = RandomNetlistSpec::default();
    let mut rng = DefaultRng::seed_from_u64(0xD1FF);
    for seed in 0..96 {
        let nl = random_netlist(seed, &spec);
        let prog = CompiledProgram::compile(&nl);
        for words in exhaustive_batches(nl.n_inputs()) {
            assert_batch_agrees(&nl, &prog, &words, &mut rng);
        }
    }
}

#[test]
fn deep_netlists_up_to_twenty_inputs_are_exhaustively_equivalent() {
    // The exhaustive ceiling: 17..=20 inputs, deeper and wider DAGs.
    let spec = RandomNetlistSpec {
        min_inputs: 17,
        max_inputs: 20,
        max_gates: 96,
        max_depth: 16,
        max_outputs: 8,
    };
    let mut rng = DefaultRng::seed_from_u64(0x000D_1FF2);
    for seed in 1000..1004 {
        let nl = random_netlist(seed, &spec);
        let prog = CompiledProgram::compile(&nl);
        for words in exhaustive_batches(nl.n_inputs()) {
            // Full differential at the three widths on a sparse subset,
            // cheap u64 twin on every batch — exhaustiveness comes from
            // the latter.
            if words[0] & 0xFFF == 0 {
                assert_batch_agrees(&nl, &prog, &words, &mut rng);
            } else {
                let inputs: Vec<u64> = words.clone();
                assert_eq!(prog.run(&inputs), nl.eval_words(&words), "{}", nl.name());
            }
        }
    }
}

#[test]
fn wide_netlists_get_a_hundred_thousand_seeded_vectors() {
    // Beyond exhaustive reach: 21..=32 inputs. 100 032 vectors = 1563
    // full 64-lane batches, all three plane widths per batch.
    let spec = RandomNetlistSpec {
        min_inputs: 21,
        max_inputs: 32,
        max_gates: 128,
        max_depth: 16,
        max_outputs: 10,
    };
    let mut noise = DefaultRng::seed_from_u64(0x000D_1FF3);
    for seed in 2000..2003 {
        let nl = random_netlist(seed, &spec);
        assert!(nl.n_inputs() > 20, "spec must exceed the exhaustive ceiling");
        let prog = CompiledProgram::compile(&nl);
        let mut rng = DefaultRng::seed_from_u64(0x5EED ^ seed);
        for _ in 0..(100_032 / LANES) {
            let words: Vec<u64> = (0..nl.n_inputs()).map(|_| rng.next_u64()).collect();
            assert_batch_agrees(&nl, &prog, &words, &mut noise);
        }
    }
}

#[test]
fn lane_permutations_commute_with_compiled_evaluation() {
    // Evaluating permuted inputs must equal permuting evaluated outputs —
    // lanes are fully independent in the compiled engine. Checked at all
    // three widths by permuting each block word.
    let spec = RandomNetlistSpec { max_gates: 64, ..RandomNetlistSpec::default() };
    let mut rng = DefaultRng::seed_from_u64(0xBEA7);
    let mut perm: [usize; LANES] = std::array::from_fn(|i| i);
    for seed in 500..516 {
        let nl = random_netlist(seed, &spec);
        let prog = CompiledProgram::compile(&nl);
        // A seeded Fisher-Yates shuffle per netlist.
        for i in (1..LANES).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        fn check<B: PlaneBlock>(
            prog: &CompiledProgram,
            words: &[Vec<u64>],
            perm: &[usize; LANES],
        ) {
            let pack = |cols: &[Vec<u64>]| -> Vec<B> {
                (0..cols[0].len())
                    .map(|i| {
                        let mut blk = B::zeros();
                        for (s, col) in cols.iter().enumerate() {
                            blk.set_word(s, col[i]);
                        }
                        blk
                    })
                    .collect()
            };
            let straight = prog.run(&pack(words));
            let permuted_words: Vec<Vec<u64>> =
                words.iter().map(|col| lanes::permute_lanes(col, perm)).collect();
            let permuted = prog.run(&pack(&permuted_words));
            for (o_straight, o_permuted) in straight.iter().zip(&permuted) {
                for s in 0..B::WORDS {
                    let expect = lanes::permute_lanes(&[o_straight.word(s)], perm)[0];
                    assert_eq!(o_permuted.word(s), expect, "word {s}");
                }
            }
        }
        let draw = |rng: &mut DefaultRng, w: usize| -> Vec<Vec<u64>> {
            (0..w).map(|_| (0..nl.n_inputs()).map(|_| rng.next_u64()).collect()).collect()
        };
        let (w1, w4, w8) = (draw(&mut rng, 1), draw(&mut rng, 4), draw(&mut rng, 8));
        check::<u64>(&prog, &w1, &perm);
        check::<[u64; 4]>(&prog, &w4, &perm);
        check::<[u64; 8]>(&prog, &w8, &perm);
    }
}

#[test]
fn compiled_sweeps_are_thread_count_invariant_at_every_width() {
    let m = WallaceMultiplier::new(8, xlac_adders::FullAdderKind::Apx2, 5).unwrap();
    let prog = CompiledProgram::compile(&wallace_netlist(&m));
    let exact = |a: u64, b: u64| a * b;
    for threads in [1usize, 2, 8] {
        let opts = SweepOptions::new(20_000, 0x7C0).threads(threads).chunk(1024);
        let base = SweepOptions::new(20_000, 0x7C0).threads(3).chunk(1024);
        assert_eq!(
            compiled_pair_sweep::<u64, _>(&prog, 8, exact, &opts),
            compiled_pair_sweep::<u64, _>(&prog, 8, exact, &base),
            "u64 planes, {threads} threads"
        );
        assert_eq!(
            compiled_pair_sweep::<[u64; 4], _>(&prog, 8, exact, &opts),
            compiled_pair_sweep::<[u64; 4], _>(&prog, 8, exact, &base),
            "[u64;4] planes, {threads} threads"
        );
        assert_eq!(
            compiled_pair_sweep::<[u64; 8], _>(&prog, 8, exact, &opts),
            compiled_pair_sweep::<[u64; 8], _>(&prog, 8, exact, &base),
            "[u64;8] planes, {threads} threads"
        );
    }
}
