//! Differential tests locking the bit-sliced 64-way evaluators to the
//! scalar golden models.
//!
//! Every `*_x64` evaluator must agree with its scalar twin **on every
//! lane**: configurations whose input space fits in 2^20 pairs are swept
//! exhaustively; wider ones see at least 10^5 seeded random vectors. The
//! scalar models are the specification — any divergence is a bug in the
//! bit-sliced engine, never tolerated as "approximately equal".

use xlac::adders::{AdderX64, FullAdderKind, GeArAdder, RippleCarryAdder, Subtractor};
use xlac::core::bits;
use xlac::core::lanes;
use xlac::core::rng::{DefaultRng, Rng};
use xlac::multipliers::{
    Mul2x2Kind, Multiplier, MultiplierX64, RecursiveMultiplier, SumMode, TruncatedMultiplier,
    WallaceMultiplier,
};

/// Minimum random vectors for configurations beyond exhaustive reach.
const RANDOM_TRIALS: u64 = 100_096; // 1564 full 64-lane batches

/// Runs `visit` over every 64-lane batch of an exhaustive sweep of all
/// `(a, b)` pairs at width `w` (caller guarantees `2^(2w) ≤ 2^20`).
/// Ragged tails repeat the last pair; only the first `n` lanes are
/// asserted on.
fn exhaustive_batches(w: usize, mut visit: impl FnMut(&[u64; 64], &[u64; 64], usize)) {
    assert!(2 * w <= 20, "exhaustive sweep must fit 2^20 pairs");
    let total = 1u64 << (2 * w);
    let mut idx = 0u64;
    while idx < total {
        let n = ((total - idx).min(64)) as usize;
        let mut a = [0u64; 64];
        let mut b = [0u64; 64];
        for l in 0..64 {
            let i = idx + (l as u64).min(n as u64 - 1);
            a[l] = i >> w;
            b[l] = i & bits::mask(w);
        }
        visit(&a, &b, n);
        idx += n as u64;
    }
}

/// Runs `visit` over `trials` seeded random pairs at width `w`, 64 lanes
/// per batch.
fn random_batches(
    w: usize,
    trials: u64,
    seed: u64,
    mut visit: impl FnMut(&[u64; 64], &[u64; 64], usize),
) {
    let mut rng = DefaultRng::seed_from_u64(seed);
    let mut done = 0u64;
    while done < trials {
        let n = ((trials - done).min(64)) as usize;
        let mut a = [0u64; 64];
        let mut b = [0u64; 64];
        rng.fill_u64(&mut a);
        rng.fill_u64(&mut b);
        for v in a.iter_mut().chain(b.iter_mut()) {
            *v = bits::truncate(*v, w);
        }
        visit(&a, &b, n);
        done += n as u64;
    }
}

/// Asserts lane-by-lane equality of an `AdderX64` against its scalar
/// `Adder` model on one batch.
fn assert_adder_batch<A: AdderX64 + ?Sized>(
    adder: &A,
    w: usize,
    a: &[u64; 64],
    b: &[u64; 64],
    n: usize,
    name: &str,
) {
    let planes = adder.add_x64(&lanes::to_planes(a, w), &lanes::to_planes(b, w));
    for l in 0..n {
        assert_eq!(
            lanes::lane(&planes, l),
            adder.add(a[l], b[l]),
            "{name}: lane {l}, a={}, b={}",
            a[l],
            b[l]
        );
    }
}

/// Asserts lane-by-lane equality of a `MultiplierX64` against its scalar
/// `Multiplier` model on one batch.
fn assert_mul_batch<M: MultiplierX64 + ?Sized>(
    m: &M,
    a: &[u64; 64],
    b: &[u64; 64],
    n: usize,
    name: &str,
) {
    let w = m.width();
    let planes = m.mul_x64(&lanes::to_planes(a, w), &lanes::to_planes(b, w));
    for l in 0..n {
        assert_eq!(
            lanes::lane(&planes, l),
            m.mul(a[l], b[l]),
            "{name}: lane {l}, a={}, b={}",
            a[l],
            b[l]
        );
    }
}

// ---------------------------------------------------------------------
// 1-bit cells and 2×2 blocks: exhaustive over every lane pattern.
// ---------------------------------------------------------------------

#[test]
fn full_adder_cells_x64_match_truth_tables_exhaustively() {
    // Pack all 8 input combinations into the lanes repeatedly, plus an
    // all-lanes-identical pattern per combination.
    for kind in FullAdderKind::ALL {
        for combo in 0..8u64 {
            let (a, b, cin) = (combo & 1, (combo >> 1) & 1, (combo >> 2) & 1);
            let fill = |bit: u64| if bit == 1 { u64::MAX } else { 0 };
            let (s, c) = kind.eval_x64(fill(a), fill(b), fill(cin));
            let (es, ec) = kind.eval(a, b, cin);
            assert_eq!(s, fill(es), "{kind} sum on combo {combo}");
            assert_eq!(c, fill(ec), "{kind} carry on combo {combo}");
        }
        // Mixed lanes: lane l carries combination l % 8.
        let mut a = 0u64;
        let mut b = 0u64;
        let mut cin = 0u64;
        for l in 0..64 {
            let combo = (l % 8) as u64;
            a |= (combo & 1) << l;
            b |= ((combo >> 1) & 1) << l;
            cin |= ((combo >> 2) & 1) << l;
        }
        let (s, c) = kind.eval_x64(a, b, cin);
        for l in 0..64 {
            let combo = (l % 8) as u64;
            let (es, ec) = kind.eval(combo & 1, (combo >> 1) & 1, (combo >> 2) & 1);
            assert_eq!((s >> l) & 1, es, "{kind} sum lane {l}");
            assert_eq!((c >> l) & 1, ec, "{kind} carry lane {l}");
        }
    }
}

#[test]
fn mul2x2_blocks_x64_match_scalar_exhaustively() {
    for kind in [Mul2x2Kind::Accurate, Mul2x2Kind::ApxSoA, Mul2x2Kind::ApxOur] {
        // All 16 operand pairs, each broadcast and also packed into lanes.
        let mut a = [0u64; 64];
        let mut b = [0u64; 64];
        for l in 0..64 {
            a[l] = (l as u64) & 3;
            b[l] = ((l as u64) >> 2) & 3;
        }
        let pa = lanes::to_planes(&a, 2);
        let pb = lanes::to_planes(&b, 2);
        let p = kind.mul_x64(pa[0], pa[1], pb[0], pb[1]);
        for l in 0..64 {
            let got = (0..4).fold(0u64, |acc, i| acc | (((p[i] >> l) & 1) << i));
            assert_eq!(got, kind.mul(a[l], b[l]), "{kind:?}: {} × {}", a[l], b[l]);
        }
    }
}

// ---------------------------------------------------------------------
// Ripple-carry adders: 6 cells × widths 4/8 exhaustive, width 16 random.
// ---------------------------------------------------------------------

#[test]
fn ripple_adders_x64_match_scalar_exhaustively_at_widths_4_and_8() {
    for w in [4usize, 8] {
        for kind in FullAdderKind::ALL {
            for lsbs in [w / 2, w] {
                let adder = RippleCarryAdder::with_approx_lsbs(w, kind, lsbs).unwrap();
                let name = format!("RCA(w={w},{kind},lsbs={lsbs})");
                exhaustive_batches(w, |a, b, n| assert_adder_batch(&adder, w, a, b, n, &name));
            }
        }
    }
}

#[test]
fn ripple_adders_x64_match_scalar_on_random_16_bit_vectors() {
    let w = 16usize;
    for kind in FullAdderKind::ALL {
        for lsbs in [6usize, 16] {
            let adder = RippleCarryAdder::with_approx_lsbs(w, kind, lsbs).unwrap();
            let name = format!("RCA(w=16,{kind},lsbs={lsbs})");
            random_batches(w, RANDOM_TRIALS, 0x16_0000 ^ lsbs as u64, |a, b, n| {
                assert_adder_batch(&adder, w, a, b, n, &name);
            });
        }
    }
}

// ---------------------------------------------------------------------
// GeAr (incl. ACA-I / ACA-II / ETAII aliases), with and without EDC.
// ---------------------------------------------------------------------

/// Asserts the full per-lane outcome (value, detections, iterations) of a
/// GeAr batch against the scalar model.
fn assert_gear_batch(
    gear: &GeArAdder,
    max_iterations: Option<usize>,
    a: &[u64; 64],
    b: &[u64; 64],
    n: usize,
    name: &str,
) {
    let w = gear.n();
    let pa = lanes::to_planes(a, w);
    let pb = lanes::to_planes(b, w);
    let out = match max_iterations {
        None => gear.add_x64(&pa, &pb),
        Some(k) => gear.add_with_correction_x64(&pa, &pb, k),
    };
    for l in 0..n {
        let scalar = match max_iterations {
            None => gear.add(a[l], b[l]),
            Some(k) => gear.add_with_correction(a[l], b[l], k),
        };
        assert_eq!(
            out.lane(l),
            scalar,
            "{name} max_iter={max_iterations:?}: lane {l}, a={}, b={}",
            a[l],
            b[l]
        );
    }
}

#[test]
fn gear_adders_x64_match_scalar_exhaustively_at_8_bits() {
    let configs = [
        GeArAdder::new(8, 2, 2).unwrap(),
        GeArAdder::new(8, 1, 3).unwrap(),
        GeArAdder::new(8, 4, 4).unwrap(),
        GeArAdder::aca_i(8, 4).unwrap(),
        GeArAdder::aca_ii(8, 4).unwrap(),
        GeArAdder::etaii(8, 2).unwrap(),
    ];
    for gear in &configs {
        let name = format!("GeAr(n=8,r={},p={})", gear.r(), gear.p());
        for max_iterations in [None, Some(0), Some(1), Some(usize::MAX)] {
            exhaustive_batches(8, |a, b, n| {
                assert_gear_batch(gear, max_iterations, a, b, n, &name);
            });
        }
    }
}

#[test]
fn gear_adders_x64_match_scalar_on_random_wide_vectors() {
    let configs = [
        GeArAdder::new(16, 4, 4).unwrap(),
        GeArAdder::new(12, 4, 4).unwrap(),
        GeArAdder::aca_i(16, 4).unwrap(),
        GeArAdder::aca_ii(16, 8).unwrap(),
        GeArAdder::etaii(16, 4).unwrap(),
    ];
    for gear in &configs {
        let w = gear.n();
        let name = format!("GeAr(n={w},r={},p={})", gear.r(), gear.p());
        for max_iterations in [None, Some(1), Some(usize::MAX)] {
            random_batches(w, RANDOM_TRIALS, 0x6EA2 ^ w as u64, |a, b, n| {
                assert_gear_batch(gear, max_iterations, a, b, n, &name);
            });
        }
    }
}

// ---------------------------------------------------------------------
// Multipliers: recursive 4×4/8×8 exhaustive, Wallace and truncated
// exhaustive at 8 bits, 16-bit families random.
// ---------------------------------------------------------------------

#[test]
fn recursive_multipliers_x64_match_scalar_exhaustively() {
    let sum_modes = [
        SumMode::Accurate,
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx1, lsbs: 2 },
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx3, lsbs: 4 },
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx5, lsbs: 4 },
    ];
    for w in [4usize, 8] {
        for block in Mul2x2Kind::ALL {
            for sum in sum_modes {
                let m = RecursiveMultiplier::new(w, block, sum).unwrap();
                let name = m.name();
                exhaustive_batches(w, |a, b, n| assert_mul_batch(&m, a, b, n, &name));
            }
        }
    }
}

#[test]
fn wallace_multipliers_x64_match_scalar_exhaustively_at_8_bits() {
    let configs = [
        (FullAdderKind::Accurate, 0usize),
        (FullAdderKind::Apx2, 4),
        (FullAdderKind::Apx4, 8),
        (FullAdderKind::Apx5, 8),
    ];
    for (kind, cols) in configs {
        let m = WallaceMultiplier::new(8, kind, cols).unwrap();
        let name = m.name();
        exhaustive_batches(8, |a, b, n| assert_mul_batch(&m, a, b, n, &name));
    }
}

#[test]
fn truncated_multipliers_x64_match_scalar_exhaustively_at_8_bits() {
    for dropped in [0usize, 3, 6] {
        for compensated in [false, true] {
            let m = TruncatedMultiplier::new(8, dropped, compensated).unwrap();
            let name = m.name();
            exhaustive_batches(8, |a, b, n| assert_mul_batch(&m, a, b, n, &name));
        }
    }
}

#[test]
fn sixteen_bit_multipliers_x64_match_scalar_on_random_vectors() {
    let rec = RecursiveMultiplier::new(
        16,
        Mul2x2Kind::ApxSoA,
        SumMode::ApproxLsbs { kind: FullAdderKind::Apx1, lsbs: 2 },
    )
    .unwrap();
    let wal = WallaceMultiplier::new(16, FullAdderKind::Apx4, 8).unwrap();
    let tru = TruncatedMultiplier::new(16, 8, true).unwrap();
    let muls: [&dyn MultiplierX64; 3] = [&rec, &wal, &tru];
    for m in muls {
        let name = m.name();
        random_batches(16, RANDOM_TRIALS, 0x3113, |a, b, n| {
            assert_mul_batch(m, a, b, n, &name);
        });
    }
}

// ---------------------------------------------------------------------
// Subtractor: exhaustive differential plus the PR 2 wrap-hazard
// regressions pinned at lane boundaries.
// ---------------------------------------------------------------------

#[test]
fn subtractor_x64_matches_scalar_exhaustively_at_8_bits() {
    for (kind, lsbs) in [
        (FullAdderKind::Accurate, 0usize),
        (FullAdderKind::Apx2, 4),
        (FullAdderKind::Apx4, 6),
        (FullAdderKind::Apx5, 4),
    ] {
        let sub = Subtractor::new(RippleCarryAdder::with_approx_lsbs(8, kind, lsbs).unwrap());
        let name = format!("Sub(8,{kind},lsbs={lsbs})");
        exhaustive_batches(8, |a, b, n| {
            let (planes, ge_mask) = sub.sub_x64(&lanes::to_planes(a, 8), &lanes::to_planes(b, 8));
            for l in 0..n {
                let (mag, a_ge_b) = sub.sub(a[l], b[l]);
                assert_eq!(
                    lanes::lane(&planes, l),
                    mag,
                    "{name}: magnitude, lane {l}, a={}, b={}",
                    a[l],
                    b[l]
                );
                assert_eq!(
                    (ge_mask >> l) & 1,
                    u64::from(a_ge_b),
                    "{name}: sign, lane {l}, a={}, b={}",
                    a[l],
                    b[l]
                );
            }
        });
    }
}

/// The PR 2 wrap hazard: with aggressive cells the inner `!b + a + 1`
/// increment can carry *twice* out of the top plane (`raw >> w == 2`), so
/// the sign test must OR the two overflow planes. These pinned vectors
/// reach that state; each is planted at both lane 0 and lane 63 with
/// adversarial neighbours to prove lane isolation across the hazard.
#[test]
fn subtractor_x64_wrap_hazard_regressions_at_lane_boundaries() {
    let hazard_configs = [
        (FullAdderKind::Apx5, 4usize),
        (FullAdderKind::Apx5, 8),
        (FullAdderKind::Apx3, 6),
        (FullAdderKind::Apx2, 8),
    ];
    // (a, b) pairs whose scalar path exercises raw-sum overflow: a ≥ b
    // with b = 0 (raw = !0 + a + 1 wraps), maximal a, and equal operands.
    let vectors = [(0xF8u64, 0u64), (0xFF, 0), (0xFF, 0xFF), (0x80, 0x7F), (1, 0), (0, 0xFF)];
    for (kind, lsbs) in hazard_configs {
        let sub = Subtractor::new(RippleCarryAdder::with_approx_lsbs(8, kind, lsbs).unwrap());
        for &(va, vb) in &vectors {
            for hot_lane in [0usize, 31, 63] {
                // Neighbour lanes carry the complementary pattern so a
                // carry leaking across a lane boundary changes a result.
                let mut a = [vb; 64];
                let mut b = [va; 64];
                a[hot_lane] = va;
                b[hot_lane] = vb;
                let (planes, ge_mask) =
                    sub.sub_x64(&lanes::to_planes(&a, 8), &lanes::to_planes(&b, 8));
                for l in 0..64 {
                    let (mag, a_ge_b) = sub.sub(a[l], b[l]);
                    assert_eq!(
                        lanes::lane(&planes, l),
                        mag,
                        "{kind}/{lsbs}: ({va},{vb}) at lane {hot_lane}, checking lane {l}"
                    );
                    assert_eq!((ge_mask >> l) & 1, u64::from(a_ge_b));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Accelerator datapaths: SAD and FIR batches against the scalar models.
// ---------------------------------------------------------------------

#[test]
fn sad_datapath_x64_matches_scalar_on_random_blocks() {
    use xlac::accel::sad::{SadAccelerator, SadVariant};
    let mut rng = DefaultRng::seed_from_u64(0x5AD5);
    for (variant, lsbs) in [
        (SadVariant::Accurate, 0usize),
        (SadVariant::ApxSad1, 2),
        (SadVariant::ApxSad3, 4),
        (SadVariant::ApxSad5, 6),
    ] {
        let sad = SadAccelerator::new(16, variant, lsbs).unwrap();
        for _ in 0..20 {
            let blocks: Vec<(Vec<u64>, Vec<u64>)> = (0..64)
                .map(|_| {
                    (
                        (0..16).map(|_| rng.gen_range(0..256u64)).collect(),
                        (0..16).map(|_| rng.gen_range(0..256u64)).collect(),
                    )
                })
                .collect();
            let batch = |reference: bool| -> Vec<Vec<u64>> {
                (0..16)
                    .map(|i| {
                        let mut vals = [0u64; 64];
                        for (j, b) in blocks.iter().enumerate() {
                            vals[j] = if reference { b.1[i] } else { b.0[i] };
                        }
                        lanes::to_planes(&vals, 8)
                    })
                    .collect()
            };
            let planes = sad.sad_x64(&batch(false), &batch(true)).unwrap();
            for (j, (c, r)) in blocks.iter().enumerate() {
                assert_eq!(
                    lanes::lane(&planes, j),
                    sad.sad(c, r).unwrap(),
                    "{variant}/{lsbs}: lane {j}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Observability determinism: the counters the sweeps emit must be a pure
// function of the workload — bitwise-identical for any worker-thread
// count — and a guaranteed no-op when the `obs` feature is off.
// ---------------------------------------------------------------------

/// Serializes the obs-registry tests: the registry is process-global, so
/// two tests resetting and reading it concurrently would race.
static OBS_REGISTRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs a fixed multiplier + GeAr sweep workload at the given thread
/// count and returns the resulting counter table.
fn sweep_counters_with_threads(threads: usize) -> Vec<(String, u64)> {
    use xlac::sim::sweeps::{gear_sweep, multiplier_sweep, SweepOptions};
    xlac::obs::reset();
    let opts = SweepOptions::new(6_000, 0xDE7).threads(threads).chunk(512);
    let m = RecursiveMultiplier::new(8, Mul2x2Kind::ApxSoA, SumMode::Accurate).unwrap();
    let stats = multiplier_sweep(&m, &opts);
    assert_eq!(stats.samples, 6_000);
    let gear = GeArAdder::new(8, 2, 2).unwrap();
    let result = gear_sweep(&gear, Some(1), &opts);
    assert_eq!(result.stats.samples, 6_000);
    xlac::obs::snapshot().counters
}

#[test]
fn obs_counter_totals_are_thread_count_invariant() {
    let _guard = OBS_REGISTRY_LOCK.lock().unwrap();
    let baseline = sweep_counters_with_threads(1);
    if xlac::obs::enabled() {
        // Counters accumulate per chunk, so totals are plain integer sums
        // over a thread-independent chunk decomposition.
        let counters = |name: &str| {
            baseline.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
        };
        assert_eq!(counters("sim.trials"), Some(12_000));
        assert_eq!(counters("sim.chunks"), Some(24));
        assert!(counters("sim.sweep.lanes").is_some());
    }
    for threads in [2usize, 4, 8] {
        assert_eq!(
            sweep_counters_with_threads(threads),
            baseline,
            "counter totals changed at {threads} worker threads"
        );
    }
}

#[test]
fn obs_disabled_build_records_nothing() {
    let _guard = OBS_REGISTRY_LOCK.lock().unwrap();
    let counters = sweep_counters_with_threads(2);
    if xlac::obs::enabled() {
        assert!(!counters.is_empty(), "enabled build must record the sweeps");
    } else {
        // The no-op registry: nothing recorded, nothing exported, and the
        // snapshot is empty even right after an instrumented workload.
        assert!(counters.is_empty());
        assert!(xlac::obs::snapshot().is_empty());
        assert!(xlac::obs::export_json_lines().is_empty());
    }
}

#[test]
fn fir_datapath_x64_matches_scalar_on_random_streams() {
    use xlac::accel::config::ApproxMode;
    use xlac::accel::fir::FirAccelerator;
    let mut rng = DefaultRng::seed_from_u64(0xF12);
    let kernels: [&[i64]; 3] = [&[1, 2, 1], &[3, -5, 7, 2, 1], &[-2, 5, -2]];
    for mode in ApproxMode::ALL {
        for h in kernels {
            let fir = FirAccelerator::new(h, mode).unwrap();
            let streams: Vec<Vec<u64>> =
                (0..64).map(|_| (0..24).map(|_| rng.gen_range(0..256u64)).collect()).collect();
            let batches: Vec<Vec<u64>> = (0..24)
                .map(|t| {
                    let mut vals = [0u64; 64];
                    for (j, s) in streams.iter().enumerate() {
                        vals[j] = s[t];
                    }
                    lanes::to_planes(&vals, 8)
                })
                .collect();
            let sliced = fir.apply_x64(&batches);
            for (j, stream) in streams.iter().enumerate() {
                let scalar = fir.apply(stream);
                for (t, &expected) in scalar.iter().enumerate() {
                    assert_eq!(sliced[t][j], expected, "{mode} {h:?}: lane {j}, t={t}");
                }
            }
        }
    }
}
