//! Compiled-program golden tests: for every module in the equivalence
//! registry, the JIT's output BDD is the source netlist's BDD — a proof
//! over the full input space via the PR 4 symbolic engine, not a sample.

use xlac_analysis::symbolic::registry::{jit_equivalence_reports, proofs_to_json};
use xlac_analysis::symbolic::{compile_netlist, jitproof, Bdd, Ref};
use xlac_multipliers::hw::wallace_netlist;
use xlac_multipliers::WallaceMultiplier;
use xlac_sim::CompiledProgram;

#[test]
fn every_registry_module_compiles_to_a_proven_equal_program() {
    let reports = jit_equivalence_reports();
    assert!(reports.len() >= 25, "expected the full registry, got {}", reports.len());
    for r in &reports {
        assert!(r.is_proven(), "{}: {:?}", r.name, r.status);
        assert_eq!(r.method, "bdd-jit", "{}", r.name);
        assert_eq!(r.representations, ["netlist", "compiled bytecode"], "{}", r.name);
    }
    // The registry serializes like every other proof family.
    let json = proofs_to_json(&reports);
    assert!(json.contains("\"method\": \"bdd-jit\""));
    assert!(!json.contains("refuted"));
}

#[test]
fn canonical_roots_make_the_wallace_proof_pointer_equality() {
    // The strongest form of the golden check: because the BDD manager is
    // canonical, the compiled program's roots are *pointer-equal* to the
    // netlist's when and only when the functions are identical.
    let m = WallaceMultiplier::new(8, xlac_adders::FullAdderKind::Apx2, 5).unwrap();
    let nl = wallace_netlist(&m);
    let prog = CompiledProgram::compile(&nl);
    let mut bdd = Bdd::new();
    let inputs: Vec<Ref> = (0..nl.n_inputs()).map(|i| bdd.var(i)).collect();
    let golden = compile_netlist(&mut bdd, &nl, &inputs);
    let jitted = jitproof::compile_program(&mut bdd, &prog, &inputs);
    assert_eq!(golden, jitted);
}
